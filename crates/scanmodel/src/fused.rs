//! Fused multi-lane segmented scans.
//!
//! The paper's build rounds issue several independent segmented scans over
//! the *same* segment descriptor (PM₁ needs Min/Max over ε plus four MBB
//! extents plus a count — seven scans per round, Sec. 4.5). Each scan is
//! O(n) work but also O(n) memory traffic over the flags/data lanes; when
//! the lanes share a descriptor, one pass can carry K accumulators and
//! amortize the traffic and (on the parallel backend) the dispatch.
//!
//! `scan_lanes_*` here run K `(data, op)` pairs — all in the same
//! direction and kind — in a single walk of the segment structure. The
//! per-lane combine order is *exactly* the order the unfused kernels use
//! ([`crate::scan::scan_seq`] sequentially, [`crate::par::scan_par`]'s
//! blocked two-pass in parallel, with the same block length), so outputs
//! are bit-identical to the composed single-scan form even for
//! non-associative-under-rounding `f64` sums. Property tests assert this.
//!
//! Ops are dynamic ([`FusedOp`]) rather than type-level so heterogeneous
//! lane sets (Min next to Max next to Sum) fit in one slice. The kernels
//! are monomorphized over the lane count (chunks of up to
//! [`MAX_FUSED_WIDTH`]) so the per-lane accumulators live in stack arrays
//! and the per-element loop unrolls — a fused pass must beat K separate
//! tight passes, which it cannot do through boxed iterators or per-block
//! heap state.

use crate::ops::{CombineOp, Max, Min, Sum};
use crate::scan::{Direction, ScanKind};
use crate::scatter::SyncPtr;
use crate::vector::Segments;
use rayon::prelude::*;

/// Combine operator selector for a fused scan lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedOp {
    /// Addition (counting lanes).
    Sum,
    /// Minimum (lower bounding-box extents).
    Min,
    /// Maximum (upper bounding-box extents).
    Max,
}

/// Element types that can flow through a fused scan: every numeric type
/// with `Sum`/`Min`/`Max` [`CombineOp`] impls. Delegates to those impls so
/// fused results are bit-identical to unfused ones by construction.
pub trait FusedElement: crate::ops::Element {
    /// The identity of `op` for this type.
    fn fused_identity(op: FusedOp) -> Self;
    /// Combines two values under `op`.
    fn fused_combine(op: FusedOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_fused_element {
    ($($t:ty),*) => {$(
        impl FusedElement for $t {
            #[inline]
            fn fused_identity(op: FusedOp) -> $t {
                match op {
                    FusedOp::Sum => CombineOp::<$t>::identity(&Sum),
                    FusedOp::Min => CombineOp::<$t>::identity(&Min),
                    FusedOp::Max => CombineOp::<$t>::identity(&Max),
                }
            }
            #[inline]
            fn fused_combine(op: FusedOp, a: $t, b: $t) -> $t {
                match op {
                    FusedOp::Sum => Sum.combine(a, b),
                    FusedOp::Min => Min.combine(a, b),
                    FusedOp::Max => Max.combine(a, b),
                }
            }
        }
    )*};
}

impl_fused_element!(i32, i64, u32, u64, usize, i8, u8, i16, u16, f64);

/// Widest lane set a single monomorphized kernel carries. Wider calls are
/// processed in chunks of this width; lanes are mutually independent, so
/// chunking cannot change any lane's output (it only forfeits some pass
/// sharing beyond the eighth lane).
pub const MAX_FUSED_WIDTH: usize = 8;

/// Directional combine with the unfused kernels' operand order: the
/// already-accumulated state sits on the walk side (`state ⊕ d` upward,
/// `d ⊕ state` downward), which is what preserves `f64` bit-identity.
#[inline(always)]
pub(crate) fn combine_dir<T: FusedElement>(op: FusedOp, dir: Direction, state: T, d: T) -> T {
    match dir {
        Direction::Up => T::fused_combine(op, state, d),
        Direction::Down => T::fused_combine(op, d, state),
    }
}

/// Zero-allocation view of the fold-restart structure: segment heads for
/// upward scans, segment ends for downward scans. Earlier kernels
/// materialized this as a `Vec<bool>` per call — one full extra pass of
/// memory traffic per scan; computing it from the flags inside the walk
/// is free.
#[derive(Clone, Copy)]
pub(crate) struct ResetView<'a> {
    flags: &'a [bool],
    down: bool,
}

impl<'a> ResetView<'a> {
    pub(crate) fn new(seg: &'a Segments, dir: Direction) -> Self {
        ResetView {
            flags: seg.flags(),
            down: matches!(dir, Direction::Down),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the fold restarts at lane `i`.
    #[inline(always)]
    pub(crate) fn at(&self, i: usize) -> bool {
        if self.down {
            i + 1 == self.flags.len() || self.flags[i + 1]
        } else {
            self.flags[i]
        }
    }
}

pub(crate) fn check_lanes<T: FusedElement>(
    lanes: &[(&[T], FusedOp)],
    seg: &Segments,
    outs: &mut [Vec<T>],
) {
    assert_eq!(
        lanes.len(),
        outs.len(),
        "scan_lanes: {} input lanes but {} output buffers",
        lanes.len(),
        outs.len()
    );
    for (data, _) in lanes {
        assert_eq!(
            data.len(),
            seg.len(),
            "scan: data length {} does not match segment descriptor length {}",
            data.len(),
            seg.len()
        );
    }
}

/// Dispatches a lane chunk of width `w ∈ 1..=MAX_FUSED_WIDTH` to the
/// kernel monomorphized for exactly that width.
macro_rules! dispatch_width {
    ($w:expr, $kernel:ident ( $($arg:expr),* $(,)? )) => {
        match $w {
            1 => $kernel::<T, 1>($($arg),*),
            2 => $kernel::<T, 2>($($arg),*),
            3 => $kernel::<T, 3>($($arg),*),
            4 => $kernel::<T, 4>($($arg),*),
            5 => $kernel::<T, 5>($($arg),*),
            6 => $kernel::<T, 6>($($arg),*),
            7 => $kernel::<T, 7>($($arg),*),
            8 => $kernel::<T, 8>($($arg),*),
            _ => unreachable!("chunk width bounded by MAX_FUSED_WIDTH"),
        }
    };
}
pub(crate) use dispatch_width;

/// Sequential fused segmented scan: runs every `(data, op)` lane in one
/// walk of the segments, writing lane `k` into `outs[k]` (cleared and
/// resized). Bit-identical per lane to [`crate::scan::scan_seq`].
///
/// # Panics
///
/// Panics if `lanes.len() != outs.len()` or any lane's length differs
/// from `seg.len()`.
pub fn scan_lanes_seq_into<T: FusedElement>(
    lanes: &[(&[T], FusedOp)],
    seg: &Segments,
    dir: Direction,
    kind: ScanKind,
    outs: &mut [Vec<T>],
) {
    check_lanes(lanes, seg, outs);
    let mut at = 0;
    while at < lanes.len() {
        let w = (lanes.len() - at).min(MAX_FUSED_WIDTH);
        let chunk = &lanes[at..at + w];
        let outs_chunk = &mut outs[at..at + w];
        dispatch_width!(w, seq_kernel(chunk, seg, dir, kind, outs_chunk));
        at += w;
    }
}

fn seq_kernel<T: FusedElement, const K: usize>(
    lanes: &[(&[T], FusedOp)],
    seg: &Segments,
    dir: Direction,
    kind: ScanKind,
    outs: &mut [Vec<T>],
) {
    let n = seg.len();
    let datas: [&[T]; K] = std::array::from_fn(|l| lanes[l].0);
    let ops: [FusedOp; K] = std::array::from_fn(|l| lanes[l].1);
    let idents: [T; K] = std::array::from_fn(|l| T::fused_identity(ops[l]));
    for (out, &id) in outs.iter_mut().zip(idents.iter()) {
        out.clear();
        out.resize(n, id);
    }
    let bases: [SyncPtr<T>; K] = std::array::from_fn(|l| SyncPtr(outs[l].as_mut_ptr()));
    for r in seg.ranges() {
        match dir {
            Direction::Up => seq_segment::<T, K>(r, &datas, &ops, &idents, dir, kind, &bases),
            Direction::Down => {
                seq_segment::<T, K>(r.rev(), &datas, &ops, &idents, dir, kind, &bases)
            }
        }
    }
}

/// One segment's walk: K stack accumulators advanced per element, outputs
/// written through raw base pointers.
///
/// The `walk` iterator is a concrete `Range` (or its `Rev`) so this
/// monomorphizes into a plain counted loop.
#[inline(always)]
fn seq_segment<T: FusedElement, const K: usize>(
    walk: impl Iterator<Item = usize>,
    datas: &[&[T]; K],
    ops: &[FusedOp; K],
    idents: &[T; K],
    dir: Direction,
    kind: ScanKind,
    bases: &[SyncPtr<T>; K],
) {
    let mut acc: [T; K] = *idents;
    let mut first = true;
    for i in walk {
        for l in 0..K {
            let d = datas[l][i];
            let next = if first {
                d
            } else {
                combine_dir(ops[l], dir, acc[l], d)
            };
            let value = match kind {
                ScanKind::Inclusive => next,
                ScanKind::Exclusive => {
                    if first {
                        idents[l]
                    } else {
                        acc[l]
                    }
                }
            };
            acc[l] = next;
            // SAFETY: i < n and every out was resized to n; each lane
            // writes only its own buffer.
            unsafe { bases[l].get().add(i).write(value) };
        }
        first = false;
    }
}

/// Parallel fused segmented scan: the blocked two-pass scheme of
/// [`crate::par`], generalized to K lanes sharing one segment walk. The
/// reset structure (`has_reset`, per-block) depends only on the flags, so
/// it is computed once per call; per-lane carries are folded in the same
/// sequential lane order as the unfused kernel, preserving `f64` rounding.
/// `threads` is the cached pool width used for block sizing.
///
/// # Panics
///
/// Panics if `lanes.len() != outs.len()` or any lane's length differs
/// from `seg.len()`.
pub fn scan_lanes_par_into<T: FusedElement>(
    lanes: &[(&[T], FusedOp)],
    seg: &Segments,
    dir: Direction,
    kind: ScanKind,
    threads: usize,
    outs: &mut [Vec<T>],
) {
    check_lanes(lanes, seg, outs);
    let n = seg.len();
    if n == 0 {
        for out in outs.iter_mut() {
            out.clear();
        }
        return;
    }
    // The fold-restart structure (segment heads for Up scans, segment
    // ends for Down) is read straight off the flags inside each walk —
    // no materialized resets vector. Shared by every lane chunk.
    let resets = ResetView::new(seg, dir);
    let blk = crate::par::block_len(n, threads);
    let mut at = 0;
    while at < lanes.len() {
        let w = (lanes.len() - at).min(MAX_FUSED_WIDTH);
        let chunk = &lanes[at..at + w];
        let outs_chunk = &mut outs[at..at + w];
        dispatch_width!(w, par_kernel(chunk, resets, blk, dir, kind, outs_chunk));
        at += w;
    }
}

/// Per-block pair-scan state for all K lanes. `valid` stands in for the
/// unfused kernel's per-lane `Option`: every lane shares the one reset
/// structure, so all K lanes become valid at the same element.
#[derive(Clone, Copy)]
pub(crate) struct LaneState<T, const K: usize> {
    pub(crate) valid: bool,
    pub(crate) state: [T; K],
}

fn par_kernel<T: FusedElement, const K: usize>(
    lanes: &[(&[T], FusedOp)],
    resets: ResetView<'_>,
    blk: usize,
    dir: Direction,
    kind: ScanKind,
    outs: &mut [Vec<T>],
) {
    let n = resets.len();
    let datas: [&[T]; K] = std::array::from_fn(|l| lanes[l].0);
    let ops: [FusedOp; K] = std::array::from_fn(|l| lanes[l].1);
    let idents: [T; K] = std::array::from_fn(|l| T::fused_identity(ops[l]));
    let nblocks = n.div_ceil(blk);

    // Pass 1: per-block pair-scan totals for every lane in one walk.
    let summaries: Vec<(bool, LaneState<T, K>)> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * blk;
            let hi = (lo + blk).min(n);
            match dir {
                Direction::Up => block_summary::<T, K>(lo..hi, resets, &datas, &ops, dir, &idents),
                Direction::Down => {
                    block_summary::<T, K>((lo..hi).rev(), resets, &datas, &ops, dir, &idents)
                }
            }
        })
        .collect();

    // Sequential carry scan over block summaries, folded lane-by-lane in
    // the same order as the unfused kernel.
    let empty = LaneState {
        valid: false,
        state: idents,
    };
    let mut carries: Vec<LaneState<T, K>> = vec![empty; nblocks];
    let mut carry = empty;
    let order: Box<dyn Iterator<Item = usize>> = match dir {
        Direction::Up => Box::new(0..nblocks),
        Direction::Down => Box::new((0..nblocks).rev()),
    };
    for b in order {
        carries[b] = carry;
        let (has_reset, total) = &summaries[b];
        if *has_reset || !carry.valid {
            carry = *total;
        } else if total.valid {
            for ((c, &op), &t) in carry
                .state
                .iter_mut()
                .zip(ops.iter())
                .zip(total.state.iter())
            {
                *c = combine_dir(op, dir, *c, t);
            }
        }
    }

    // Pass 2: re-scan each block seeded with its carries, writing all K
    // outputs in the same walk through raw base pointers (each block
    // writes only its own slots, so writes are disjoint).
    for (out, &id) in outs.iter_mut().zip(idents.iter()) {
        out.clear();
        out.resize(n, id);
    }
    let bases: [SyncPtr<T>; K] = std::array::from_fn(|l| SyncPtr(outs[l].as_mut_ptr()));
    (0..nblocks).into_par_iter().for_each(|b| {
        let lo = b * blk;
        let hi = (lo + blk).min(n);
        let _carry_out = match dir {
            Direction::Up => block_rescan::<T, K>(
                lo..hi,
                carries[b],
                resets,
                &datas,
                &ops,
                &idents,
                dir,
                kind,
                &bases,
            ),
            Direction::Down => block_rescan::<T, K>(
                (lo..hi).rev(),
                carries[b],
                resets,
                &datas,
                &ops,
                &idents,
                dir,
                kind,
                &bases,
            ),
        };
    });
}

/// Pass-1 body for one block: the K-lane pair-scan total plus whether the
/// block contains a reset. Stack state only.
#[inline(always)]
pub(crate) fn block_summary<T: FusedElement, const K: usize>(
    walk: impl Iterator<Item = usize>,
    resets: ResetView<'_>,
    datas: &[&[T]; K],
    ops: &[FusedOp; K],
    dir: Direction,
    idents: &[T; K],
) -> (bool, LaneState<T, K>) {
    let mut s = LaneState {
        valid: false,
        state: *idents,
    };
    let mut has_reset = false;
    for i in walk {
        if resets.at(i) || !s.valid {
            has_reset |= resets.at(i);
            s.valid = true;
            for (st, d) in s.state.iter_mut().zip(datas.iter()) {
                *st = d[i];
            }
        } else {
            for ((st, &op), d) in s.state.iter_mut().zip(ops.iter()).zip(datas.iter()) {
                *st = combine_dir(op, dir, *st, d[i]);
            }
        }
    }
    (has_reset, s)
}

/// Pass-2 body for one block: re-scan seeded by the block's carries,
/// writing every lane's output slot through its base pointer. Returns
/// the carry-out state so a single-worker blocked walk can thread it
/// straight into the next block (see [`crate::blocked`]).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_rescan<T: FusedElement, const K: usize>(
    walk: impl Iterator<Item = usize>,
    mut seed: LaneState<T, K>,
    resets: ResetView<'_>,
    datas: &[&[T]; K],
    ops: &[FusedOp; K],
    idents: &[T; K],
    dir: Direction,
    kind: ScanKind,
    bases: &[SyncPtr<T>; K],
) -> LaneState<T, K> {
    for i in walk {
        let reset = resets.at(i);
        let fresh = reset || !seed.valid;
        assert!(
            !fresh || reset || !matches!(kind, ScanKind::Exclusive),
            "interior lane must have a neighbour in its segment"
        );
        for l in 0..K {
            let d = datas[l][i];
            let before = seed.state[l];
            let next = if fresh {
                d
            } else {
                combine_dir(ops[l], dir, before, d)
            };
            let value = match kind {
                ScanKind::Inclusive => next,
                ScanKind::Exclusive => {
                    if reset {
                        idents[l]
                    } else {
                        before
                    }
                }
            };
            seed.state[l] = next;
            // SAFETY: slot i of lane l is written exactly once, by the
            // block owning index i; blocks are disjoint and i < n, within
            // each out's resized length.
            unsafe { bases[l].get().add(i).write(value) };
        }
        seed.valid = true;
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Max, Min, Sum};
    use crate::scan::scan_seq;

    fn reference<T>(
        lanes: &[(&[T], FusedOp)],
        seg: &Segments,
        dir: Direction,
        kind: ScanKind,
    ) -> Vec<Vec<T>>
    where
        T: FusedElement + PartialEq + std::fmt::Debug,
        Sum: CombineOp<T>,
        Min: CombineOp<T>,
        Max: CombineOp<T>,
    {
        lanes
            .iter()
            .map(|&(data, op)| match op {
                FusedOp::Sum => scan_seq(data, seg, Sum, dir, kind),
                FusedOp::Min => scan_seq(data, seg, Min, dir, kind),
                FusedOp::Max => scan_seq(data, seg, Max, dir, kind),
            })
            .collect()
    }

    fn check_all_modes<T>(lanes: &[(&[T], FusedOp)], seg: &Segments)
    where
        T: FusedElement + PartialEq + std::fmt::Debug,
        Sum: CombineOp<T>,
        Min: CombineOp<T>,
        Max: CombineOp<T>,
    {
        for dir in [Direction::Up, Direction::Down] {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                let want = reference(lanes, seg, dir, kind);
                let mut seq: Vec<Vec<T>> = vec![Vec::new(); lanes.len()];
                scan_lanes_seq_into(lanes, seg, dir, kind, &mut seq);
                assert_eq!(seq, want, "seq {dir:?} {kind:?}");
                let mut par: Vec<Vec<T>> = vec![Vec::new(); lanes.len()];
                scan_lanes_par_into(
                    lanes,
                    seg,
                    dir,
                    kind,
                    rayon::current_num_threads(),
                    &mut par,
                );
                assert_eq!(par, want, "par {dir:?} {kind:?}");
            }
        }
    }

    #[test]
    fn fused_matches_composed_on_fig8() {
        let a = vec![3i64, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3];
        let b = vec![-5i64, 9, 0, 2, 8, -1, 4, 7, 6, 1, -3, 2];
        let seg = Segments::from_lengths(&[3, 4, 2, 3]).unwrap();
        let lanes: Vec<(&[i64], FusedOp)> = vec![
            (&a, FusedOp::Sum),
            (&b, FusedOp::Min),
            (&b, FusedOp::Max),
            (&a, FusedOp::Max),
        ];
        check_all_modes(&lanes, &seg);
    }

    #[test]
    fn fused_matches_composed_on_large_irregular_f64() {
        let n = 50_000usize;
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let a: Vec<f64> = (0..n)
            .map(|_| (next() % 2000) as f64 / 7.0 - 140.0)
            .collect();
        let b: Vec<f64> = (0..n).map(|_| (next() % 999) as f64 * 0.31).collect();
        let mut lengths = Vec::new();
        let mut covered = 0usize;
        while covered < n {
            let l = (((next() % 311) + 1) as usize).min(n - covered);
            lengths.push(l);
            covered += l;
        }
        let seg = Segments::from_lengths(&lengths).unwrap();
        let lanes: Vec<(&[f64], FusedOp)> = vec![
            (&a, FusedOp::Sum),
            (&a, FusedOp::Min),
            (&a, FusedOp::Max),
            (&b, FusedOp::Sum),
            (&b, FusedOp::Min),
        ];
        check_all_modes(&lanes, &seg);
    }

    #[test]
    fn fused_wider_than_max_width_chunks() {
        // More lanes than MAX_FUSED_WIDTH: the kernels process the set in
        // chunks, which must be invisible in the outputs.
        let n = 5_000usize;
        let a: Vec<i64> = (0..n).map(|i| (i % 17) as i64 - 8).collect();
        let seg = Segments::from_lengths(&[n / 2, n - n / 2]).unwrap();
        let lanes: Vec<(&[i64], FusedOp)> = (0..MAX_FUSED_WIDTH + 3)
            .map(|l| {
                (
                    a.as_slice(),
                    match l % 3 {
                        0 => FusedOp::Sum,
                        1 => FusedOp::Min,
                        _ => FusedOp::Max,
                    },
                )
            })
            .collect();
        check_all_modes(&lanes, &seg);
    }

    #[test]
    fn fused_single_giant_segment() {
        let n = 20_000usize;
        let a: Vec<i64> = (0..n).map(|i| (i % 13) as i64 - 6).collect();
        let seg = Segments::single(n);
        let lanes: Vec<(&[i64], FusedOp)> = vec![(&a, FusedOp::Sum), (&a, FusedOp::Min)];
        check_all_modes(&lanes, &seg);
    }

    #[test]
    fn fused_empty_and_singleton() {
        let empty: Vec<i64> = Vec::new();
        let seg0 = Segments::single(0);
        let lanes: Vec<(&[i64], FusedOp)> = vec![(&empty, FusedOp::Sum)];
        let mut outs = vec![vec![1i64, 2]];
        scan_lanes_par_into(
            &lanes,
            &seg0,
            Direction::Up,
            ScanKind::Inclusive,
            4,
            &mut outs,
        );
        assert!(outs[0].is_empty());
        let one = vec![5i64];
        let seg1 = Segments::single(1);
        let lanes: Vec<(&[i64], FusedOp)> = vec![(&one, FusedOp::Sum), (&one, FusedOp::Max)];
        check_all_modes(&lanes, &seg1);
    }
}
