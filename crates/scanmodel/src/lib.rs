//! # scan-model — a software vector machine for the scan model
//!
//! This crate is the substrate for the reproduction of *Hoel & Samet,
//! "Data-Parallel Primitives for Spatial Operations", ICPP 1995*. The paper
//! expresses all of its spatial algorithms in Blelloch's **scan model** of
//! parallel computation (Section 3.2 of the paper): a machine that operates
//! on arbitrarily long vectors with three families of primitives, each of
//! which produces result vectors of equal length:
//!
//! * **scan** operations — segmented / unsegmented, upward / downward,
//!   inclusive / exclusive prefix combines under an associative operator
//!   (paper Fig. 8);
//! * **elementwise** operations — lane-by-lane maps over one or two vectors
//!   (paper Fig. 9);
//! * **permutations** — one-to-one repositioning by an index vector
//!   (paper Fig. 10).
//!
//! The original work ran on a Thinking Machines CM-5; here the "machine" is
//! the [`Machine`] type, which executes the same primitives on a shared
//! memory multicore via either a sequential reference backend or a
//! rayon-parallel backend (see [`Backend`]). Both backends are exact and
//! deterministic, and every public operation routes through [`Machine`] so
//! that an [`OpStats`] counter can record how many primitive operations an
//! algorithm issued — this is how the complexity claims of the paper
//! (e.g. "O(log n) stages of O(1) scans each") are verified empirically.
//!
//! On top of the three raw primitive families, the crate provides the
//! higher-level spatial primitives of the paper's Section 4:
//!
//! * [`Machine::clone_layout`] — *cloning* / *generalize* (Sec. 4.1);
//! * [`Machine::unshuffle_layout`] — *unshuffling* / *packing* (Sec. 4.2);
//! * [`Machine::delete_layout`] — *duplicate deletion* / *concentrate*
//!   (Sec. 4.3);
//! * [`Machine::fanout_layout`] — the generalized pair-expansion form of
//!   cloning used by the frontier algorithms (batch query descent,
//!   spatial join);
//! * [`Machine::flat_map`] — the variable-arity flat-map (counts lane →
//!   segmented layout → fused clone/apply), the full generalization of
//!   cloning that the dominance/skyline pipelines compact and expand
//!   with;
//! * [`Machine::segment_counts`] — the *node capacity check* scan (Sec. 4.4);
//! * [`Machine::broadcast_first`] / [`Machine::broadcast_last`] — the
//!   copy-scan broadcast used throughout Section 4;
//! * [`Machine::segmented_sort_perm`] — the per-segment sort used by the
//!   R-tree sweep split (Sec. 4.7).
//!
//! ## Quick example
//!
//! ```
//! use scan_model::{Machine, Backend, ops::Sum, ScanKind, Segments};
//!
//! let m = Machine::new(Backend::Sequential);
//! // The worked example of the paper's Fig. 8: four segments of sizes
//! // 3, 4, 2 and 3.
//! let data: Vec<i64> = vec![3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3];
//! let seg = Segments::from_lengths(&[3, 4, 2, 3]).unwrap();
//! let up_in = m.up_scan_seg(&data, &seg, Sum, ScanKind::Inclusive);
//! assert_eq!(up_in, vec![3, 4, 6, 1, 1, 2, 4, 2, 3, 0, 3, 6]);
//! ```

pub mod arena;
pub mod blocked;
pub mod error;
pub mod expand;
pub mod fault;
pub mod flat_map;
pub mod fused;
pub mod machine;
pub mod ops;
pub mod par;
pub mod permute;
pub mod primitives;
pub mod scan;
pub mod scatter;
pub mod soa;
pub mod vector;

pub use arena::ScratchArena;
pub use error::ScanModelError;
pub use expand::FanoutLayout;
pub use fault::{FaultMode, FaultPlan, FaultSite, InjectedFault, WorkerFaultGuard};
pub use fused::{FusedElement, FusedOp};
pub use machine::{Backend, Machine, OpStats, RoundTrace, StatsSnapshot, MAX_ROUND_TRACES};
pub use scan::{Direction, ScanKind};
pub use vector::Segments;
