//! Deterministic fault injection for the scan-model stack.
//!
//! The paper's pipelines are deterministic compositions of scans,
//! elementwise operations and permutes, which makes *failures* the one
//! behaviour a differential test cannot reach without help: a worker
//! panic, an arena overflow or an aborted build round never occurs
//! naturally on correct inputs. [`FaultPlan`] makes them reachable on
//! demand and — crucially — **reproducibly**: every injection decision is
//! a pure function of `(seed, site, occurrence index)`, derived from the
//! workspace's deterministic [`rand`] shim with no wall clock anywhere,
//! so the same plan over the same workload fires the same faults on every
//! run, every backend, and every thread schedule (occurrence indices are
//! claimed atomically, so concurrent checkers partition them; use
//! [`FaultPlan::fork`] to give concurrent components independent,
//! individually deterministic streams).
//!
//! ## Sites
//!
//! A plan speaks about named [`FaultSite`]s, each checked by the layer
//! that owns it:
//!
//! * [`FaultSite::WorkerPanic`] — the rayon shim's pool kills a worker
//!   closure mid-job (installed via [`WorkerFaultGuard`]);
//! * [`FaultSite::ArenaOverflow`] — the machine clamps its
//!   [`crate::ScratchArena`] to the minimum cap and evicts everything,
//!   simulating memory pressure at a round boundary (recoverable by
//!   design: the arena re-allocates on demand);
//! * [`FaultSite::RoundAbort`] — the round driver in `dp-spatial` panics
//!   at the top of a build/join step, killing the build mid-flight;
//! * [`FaultSite::PoisonedRequest`] — `dp-workloads` replaces requests in
//!   a stream with malformed ones (non-finite windows, `k = 0`);
//! * [`FaultSite::SnapshotTorn`] — the snapshot writer in `dp-spatial`
//!   corrupts the bytes it is about to persist (a seeded single-bit flip
//!   or truncation inside one section), simulating a torn write; the
//!   reader's checksums must catch it and the service must fall through
//!   to a cold rebuild;
//! * [`FaultSite::SkylineAbort`] — the dominance/skyline aggregation
//!   pipeline in `dp-spatial` panics at a merge-round boundary, killing
//!   the staircase build mid-flight (the service retries, then falls
//!   back to its brute oracle).
//!
//! Panicking sites raise [`InjectedFault`] via `std::panic::panic_any`,
//! so recovery layers can tell an injected fault from a genuine bug by
//! downcasting the payload.

use crate::machine::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A named place in the stack where a [`FaultPlan`] can inject a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A worker closure in the rayon shim's persistent pool panics
    /// before running its job body.
    WorkerPanic,
    /// The machine's scratch arena is clamped to its minimum cap and
    /// fully evicted at a round boundary (simulated memory pressure).
    ArenaOverflow,
    /// A round-driver step aborts by panic before doing any work.
    RoundAbort,
    /// A request in a workload stream is replaced by a malformed one.
    PoisonedRequest,
    /// The snapshot writer corrupts a section it is persisting (seeded
    /// bit flip or truncation), simulating a torn write. Non-panicking:
    /// the damage is silent and must be caught by the reader's checksums.
    SnapshotTorn,
    /// A skyline/dominance aggregation round aborts by panic at a round
    /// boundary, killing the staircase build mid-flight.
    SkylineAbort,
}

impl FaultSite {
    /// Every site, in a fixed order (the plan's internal indexing).
    pub const ALL: [FaultSite; 6] = [
        FaultSite::WorkerPanic,
        FaultSite::ArenaOverflow,
        FaultSite::RoundAbort,
        FaultSite::PoisonedRequest,
        FaultSite::SnapshotTorn,
        FaultSite::SkylineAbort,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::ArenaOverflow => 1,
            FaultSite::RoundAbort => 2,
            FaultSite::PoisonedRequest => 3,
            FaultSite::SnapshotTorn => 4,
            FaultSite::SkylineAbort => 5,
        }
    }

    /// Per-site salt mixed into the seeded decision stream so sites
    /// checked the same number of times still fire independently.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; fixed forever for reproducibility.
        [
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
            0xd6e8_feb8_6659_fd93,
            0xa076_1d64_78bd_642f,
            0xe703_7ed1_b185_33db,
        ][self.index()]
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::ArenaOverflow => "arena-overflow",
            FaultSite::RoundAbort => "round-abort",
            FaultSite::PoisonedRequest => "poisoned-request",
            FaultSite::SnapshotTorn => "snapshot-torn",
            FaultSite::SkylineAbort => "skyline-abort",
        })
    }
}

/// The panic payload raised by panicking fault sites. Recovery layers
/// downcast caught payloads to this type to distinguish injected faults
/// from genuine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: FaultSite,
    /// Which check at that site fired (0-based occurrence index).
    pub occurrence: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault (occurrence {})",
            self.site, self.occurrence
        )
    }
}

/// When a site fires, as a function of its occurrence index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Never fires (the default for every site).
    Never,
    /// Fires exactly at occurrence `k` (0-based) and never again.
    OnceAt(u64),
    /// Fires at every occurrence.
    Always,
    /// Fires at each occurrence independently with probability `rate`,
    /// decided by the plan's seeded stream.
    Seeded {
        /// Per-occurrence firing probability in `[0, 1]`.
        rate: f64,
    },
}

/// SplitMix64 — the same mixer the rand shim seeds with; used here to
/// derive decision seeds and fork salts without correlation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic fault-injection plan: one [`FaultMode`] per
/// [`FaultSite`], plus atomic occurrence and fired counters.
///
/// Cheap to share (`Arc<FaultPlan>`); a [`Machine`] built with
/// [`Machine::with_fault_plan`] consults it at its fault sites, and the
/// counters let tests assert *exactly* how many faults were injected
/// (e.g. "the kill-at-round-k fault fired exactly once").
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    modes: [FaultMode; 6],
    occurrences: [AtomicU64; 6],
    fired: [AtomicU64; 6],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan with every site set to [`FaultMode::Never`] and the given
    /// decision seed (relevant only once a site uses
    /// [`FaultMode::Seeded`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            modes: [FaultMode::Never; 6],
            occurrences: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A plan that never fires — the identity plan production code runs
    /// under.
    pub fn disabled() -> Self {
        FaultPlan::new(0)
    }

    /// A plan where **every** site fires with probability `rate` per
    /// occurrence, decided by `seed`. Sites only fire where they are
    /// checked: e.g. [`FaultSite::WorkerPanic`] stays inert unless a
    /// [`WorkerFaultGuard`] is installed.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        let mut plan = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            plan.modes[site.index()] = FaultMode::Seeded { rate };
        }
        plan
    }

    /// A plan firing `site` exactly at occurrence `k` (everything else
    /// disabled).
    pub fn once_at(site: FaultSite, k: u64) -> Self {
        FaultPlan::new(0).with(site, FaultMode::OnceAt(k))
    }

    /// A plan firing `site` at every occurrence (everything else
    /// disabled).
    pub fn always(site: FaultSite) -> Self {
        FaultPlan::new(0).with(site, FaultMode::Always)
    }

    /// Builder: sets one site's mode.
    pub fn with(mut self, site: FaultSite, mode: FaultMode) -> Self {
        self.modes[site.index()] = mode;
        self
    }

    /// The plan's decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured mode of `site`.
    pub fn mode(&self, site: FaultSite) -> FaultMode {
        self.modes[site.index()]
    }

    /// A child plan with the same modes, the seed mixed with `salt`, and
    /// fresh counters. Give each concurrent component (e.g. each service
    /// shard) its own fork: occurrence indices then count per component,
    /// which keeps decisions independent of cross-component thread
    /// interleaving.
    pub fn fork(&self, salt: u64) -> FaultPlan {
        FaultPlan {
            seed: splitmix64(self.seed ^ splitmix64(salt)),
            modes: self.modes,
            occurrences: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Claims the next occurrence of `site` and decides whether it fires.
    /// Returns the occurrence index when firing, `None` otherwise. The
    /// decision is a pure function of `(seed, site, occurrence)` — two
    /// runs claiming occurrences in a different thread order still fire
    /// the same *set* of occurrences.
    pub fn should_fire(&self, site: FaultSite) -> Option<u64> {
        let i = site.index();
        let occurrence = self.occurrences[i].fetch_add(1, Ordering::Relaxed);
        let fire = match self.modes[i] {
            FaultMode::Never => false,
            FaultMode::OnceAt(k) => occurrence == k,
            FaultMode::Always => true,
            FaultMode::Seeded { rate } => {
                let mix = splitmix64(self.seed ^ site.salt() ^ splitmix64(occurrence));
                StdRng::seed_from_u64(mix).gen_bool(rate.clamp(0.0, 1.0))
            }
        };
        if fire {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
            Some(occurrence)
        } else {
            None
        }
    }

    /// How many times `site` has been checked.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.occurrences[site.index()].load(Ordering::Relaxed)
    }

    /// How many times `site` actually fired.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }
}

/// Serializes tests that install the process-global worker-fault hook
/// (the rayon shim has exactly one hook slot per process).
fn worker_guard_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// RAII installer of the [`FaultSite::WorkerPanic`] hook.
///
/// While the guard lives, pool jobs submitted from the installing thread
/// (and, transitively, jobs those jobs submit) consult `plan` before
/// running and panic with [`InjectedFault`] when it fires. The guard
/// holds a process-global lock so concurrent tests cannot fight over the
/// single hook slot, arms the installing thread, and uninstalls the hook
/// on drop.
#[must_use = "dropping the guard uninstalls the worker fault hook"]
pub struct WorkerFaultGuard {
    _arm: rayon::FaultArmGuard,
    _serial: MutexGuard<'static, ()>,
}

impl WorkerFaultGuard {
    /// Installs the hook for `plan` and arms the current thread.
    pub fn install(plan: Arc<FaultPlan>) -> Self {
        let serial = worker_guard_lock();
        rayon::set_fault_hook(Some(Arc::new(move || {
            if let Some(occurrence) = plan.should_fire(FaultSite::WorkerPanic) {
                std::panic::panic_any(InjectedFault {
                    site: FaultSite::WorkerPanic,
                    occurrence,
                });
            }
        })));
        WorkerFaultGuard {
            _arm: rayon::arm_fault_hook(),
            _serial: serial,
        }
    }
}

impl Drop for WorkerFaultGuard {
    fn drop(&mut self) {
        rayon::set_fault_hook(None);
    }
}

impl Machine {
    /// Checks `site` against the machine's fault plan (if any) and panics
    /// with [`InjectedFault`] when it fires. Called by the owning layer of
    /// each panicking site — e.g. the round driver at the top of every
    /// step. A machine without a plan (the default) checks nothing.
    pub fn check_fault(&self, site: FaultSite) {
        if let Some(plan) = self.fault_plan() {
            if let Some(occurrence) = plan.should_fire(site) {
                std::panic::panic_any(InjectedFault { site, occurrence });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert_eq!(plan.should_fire(site), None);
            }
            assert_eq!(plan.occurrences(site), 100);
            assert_eq!(plan.fired(site), 0);
        }
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn once_at_fires_exactly_once() {
        let plan = FaultPlan::once_at(FaultSite::RoundAbort, 3);
        let fired: Vec<u64> = (0..10)
            .filter_map(|_| plan.should_fire(FaultSite::RoundAbort))
            .collect();
        assert_eq!(fired, vec![3]);
        assert_eq!(plan.fired(FaultSite::RoundAbort), 1);
        // Other sites untouched.
        assert_eq!(plan.should_fire(FaultSite::ArenaOverflow), None);
    }

    #[test]
    fn seeded_decisions_are_reproducible_and_seed_sensitive() {
        let decide = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed, 0.3);
            (0..200)
                .map(|_| plan.should_fire(FaultSite::RoundAbort).is_some())
                .collect()
        };
        let a = decide(42);
        assert_eq!(a, decide(42), "same seed must replay identically");
        assert_ne!(a, decide(43), "different seeds should differ");
        let rate = a.iter().filter(|&&f| f).count();
        assert!((20..=100).contains(&rate), "rate 0.3 fired {rate}/200");
    }

    #[test]
    fn sites_fire_independently_under_one_seed() {
        let fires = |site: FaultSite| -> Vec<bool> {
            let plan = FaultPlan::seeded(7, 0.5);
            (0..64).map(|_| plan.should_fire(site).is_some()).collect()
        };
        assert_ne!(fires(FaultSite::WorkerPanic), fires(FaultSite::RoundAbort));
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let parent = FaultPlan::seeded(99, 0.4);
        let sample = |plan: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|_| plan.should_fire(FaultSite::RoundAbort).is_some())
                .collect()
        };
        let a1 = sample(&parent.fork(1));
        let a2 = sample(&parent.fork(1));
        let b = sample(&parent.fork(2));
        assert_eq!(a1, a2, "same fork salt must replay identically");
        assert_ne!(a1, b, "different fork salts should differ");
        // Forking leaves the parent's counters untouched.
        assert_eq!(parent.occurrences(FaultSite::RoundAbort), 0);
    }

    #[test]
    fn machine_without_plan_checks_nothing() {
        let m = Machine::sequential();
        for _ in 0..10 {
            m.check_fault(FaultSite::RoundAbort); // must not panic
        }
    }

    #[test]
    fn machine_check_fault_panics_with_typed_payload() {
        let plan = Arc::new(FaultPlan::once_at(FaultSite::RoundAbort, 1));
        let m = Machine::sequential().with_fault_plan(plan.clone());
        m.check_fault(FaultSite::RoundAbort); // occurrence 0: no fire
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.check_fault(FaultSite::RoundAbort)
        }))
        .expect_err("occurrence 1 must fire");
        let fault = caught
            .downcast_ref::<InjectedFault>()
            .expect("payload is InjectedFault");
        assert_eq!(
            *fault,
            InjectedFault {
                site: FaultSite::RoundAbort,
                occurrence: 1
            }
        );
        assert_eq!(plan.fired(FaultSite::RoundAbort), 1);
        // The machine stays usable after the unwound check.
        m.check_fault(FaultSite::RoundAbort);
        assert_eq!(plan.occurrences(FaultSite::RoundAbort), 3);
    }

    #[test]
    fn worker_guard_kills_and_restores() {
        let plan = Arc::new(FaultPlan::always(FaultSite::WorkerPanic));
        {
            let _guard = WorkerFaultGuard::install(plan.clone());
            let caught = std::panic::catch_unwind(|| {
                rayon::pool::run_indexed(8, &|_| {});
            });
            assert!(caught.is_err(), "armed pool jobs must die");
        }
        assert!(plan.fired(FaultSite::WorkerPanic) >= 1);
        let before = plan.occurrences(FaultSite::WorkerPanic);
        // Guard dropped: the pool is healthy again and the plan is no
        // longer consulted.
        rayon::pool::run_indexed(8, &|_| {});
        assert_eq!(plan.occurrences(FaultSite::WorkerPanic), before);
    }
}
