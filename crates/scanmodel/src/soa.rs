//! Byte-level accessors for the flat SoA lanes the scan model operates
//! on, used by the snapshot codec in `dp-spatial` for zero-copy section
//! writes.
//!
//! The machine's vectors are plain `Vec<f64>` / `Vec<u32>` lanes. On a
//! little-endian target (every platform this workspace runs on) their
//! in-memory representation *is* the on-disk little-endian layout, so
//! encoding a lane is a reinterpret-cast, not a copy. The helpers here
//! return [`Cow`] so the big-endian fallback still compiles and stays
//! correct — it byte-swaps into an owned buffer — while the common case
//! borrows.
//!
//! Decoding is always checked: lengths must be exact multiples of the
//! element size, and the output is built element-by-element from
//! little-endian bytes (alignment of the input buffer is never assumed).

use std::borrow::Cow;

/// Little-endian byte view of an `f64` lane. Zero-copy on little-endian
/// targets, an owned byte-swapped buffer otherwise.
pub fn f64_lane_bytes(lane: &[f64]) -> Cow<'_, [u8]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: f64 has no padding and u8 has alignment 1; the length
        // in bytes is exactly `lane.len() * 8`.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(lane.as_ptr() as *const u8, std::mem::size_of_val(lane))
        })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = Vec::with_capacity(lane.len() * 8);
        for v in lane {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Cow::Owned(out)
    }
}

/// Little-endian byte view of a `u32` lane (segment ids, child indexes).
pub fn u32_lane_bytes(lane: &[u32]) -> Cow<'_, [u8]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: u32 has no padding and u8 has alignment 1.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(lane.as_ptr() as *const u8, std::mem::size_of_val(lane))
        })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = Vec::with_capacity(lane.len() * 4);
        for v in lane {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Cow::Owned(out)
    }
}

/// Little-endian byte view of a `u64` lane (lengths, counters).
pub fn u64_lane_bytes(lane: &[u64]) -> Cow<'_, [u8]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: u64 has no padding and u8 has alignment 1.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(lane.as_ptr() as *const u8, std::mem::size_of_val(lane))
        })
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = Vec::with_capacity(lane.len() * 8);
        for v in lane {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Cow::Owned(out)
    }
}

/// Decodes a little-endian `f64` lane. `None` when the byte length is
/// not a multiple of 8.
pub fn f64_lane_from_bytes(bytes: &[u8]) -> Option<Vec<f64>> {
    if bytes.len() % 8 != 0 {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect(),
    )
}

/// Decodes a little-endian `u32` lane. `None` when the byte length is
/// not a multiple of 4.
pub fn u32_lane_from_bytes(bytes: &[u8]) -> Option<Vec<u32>> {
    if bytes.len() % 4 != 0 {
        return None;
    }
    Some(
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect(),
    )
}

/// Decodes a little-endian `u64` lane. `None` when the byte length is
/// not a multiple of 8.
pub fn u64_lane_from_bytes(bytes: &[u8]) -> Option<Vec<u64>> {
    if bytes.len() % 8 != 0 {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let lane = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 1e300];
        let bytes = f64_lane_bytes(&lane);
        assert_eq!(bytes.len(), lane.len() * 8);
        assert_eq!(f64_lane_from_bytes(&bytes).unwrap(), lane);
    }

    #[test]
    fn u32_round_trip() {
        let lane = vec![0u32, 1, u32::MAX, 0xdead_beef];
        let bytes = u32_lane_bytes(&lane);
        assert_eq!(bytes.len(), lane.len() * 4);
        assert_eq!(u32_lane_from_bytes(&bytes).unwrap(), lane);
    }

    #[test]
    fn u64_round_trip() {
        let lane = vec![0u64, u64::MAX, 0x0123_4567_89ab_cdef];
        let bytes = u64_lane_bytes(&lane);
        assert_eq!(bytes.len(), lane.len() * 8);
        assert_eq!(u64_lane_from_bytes(&bytes).unwrap(), lane);
    }

    #[test]
    fn byte_view_is_the_le_encoding() {
        // The borrowed view must equal the portable per-element encoding.
        let lane = [1.0f64, 2.5, -3.25];
        let mut expect = Vec::new();
        for v in lane {
            expect.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(f64_lane_bytes(&lane).as_ref(), expect.as_slice());
    }

    #[test]
    fn ragged_lengths_are_rejected() {
        assert_eq!(f64_lane_from_bytes(&[0u8; 7]), None);
        assert_eq!(u32_lane_from_bytes(&[0u8; 6]), None);
        assert_eq!(u64_lane_from_bytes(&[0u8; 12]), None);
        assert_eq!(f64_lane_from_bytes(&[]), Some(Vec::new()));
    }
}
