//! Variable-arity flat-map: the generalized cloning/fan-out kernel.
//!
//! [`Machine::fanout_layout`] (see [`crate::expand`]) already generalizes
//! the paper's cloning primitive (Sec. 4.1) from "one copy next to each
//! flagged lane" to "replicate lane `i` exactly `copies[i]` times". The
//! flat-map primitive completes the generalization in two directions:
//!
//! * **apply function** — [`Machine::apply_flat_map`] materializes
//!   `f(value, rank)` for every copy in a *single fused sweep* (the
//!   gather by source lane and the downstream elementwise op touch each
//!   output lane once), instead of a gather pass followed by a map pass.
//!   This is the shape dominance/skyline aggregation needs (Sroka &
//!   Tyszkiewicz): emit a variable number of derived elements per input
//!   lane, e.g. "keep this lane's id iff it survived the skyline test".
//! * **blocked layout** — [`Machine::flat_map_layout`] materializes the
//!   layout itself (source lanes, ranks, output segment flags) with the
//!   same block-reduce → carry → block-apply structure as the other
//!   layout kernels ([`crate::blocked`]): each input block owns the
//!   disjoint output span `offsets[lo]..offsets[hi]`, and the
//!   vanished-segment-head pending flag is carried across blocks exactly
//!   like a scan carry. With one worker the phases collapse into a
//!   single sweep that reproduces the sequential reference bit-for-bit.
//!
//! Paper-level accounting is unchanged from a single cloning: one scan
//! (the room-making offset scan), two elementwise ops (the count
//! widening and the position/rank derivation) and one permutation (the
//! scatter), for any fan-out width — [`Machine::fanout_layout`] now
//! delegates here and keeps its pinned operation counts. The fused
//! apply is one permutation plus one elementwise op per output vector.

use crate::expand::FanoutLayout;
use crate::machine::Machine;
use crate::ops::{Element, Sum};
use crate::scan::ScanKind;
use crate::scatter::SyncPtr;
use crate::vector::Segments;

/// Per-block summary of the pending segment-head carry (phase 1 of the
/// blocked layout): whether the block emitted any output lane, and the
/// OR of input segment flags after its last surviving lane (all of its
/// flags when nothing survived).
#[derive(Clone, Copy, Default)]
struct PendingSummary {
    has_survivor: bool,
    trailing_or: bool,
}

impl Machine {
    /// Computes a variable-arity flat-map layout: lane `i` of the input
    /// is replicated `counts[i]` times (zero deletes the lane), copies
    /// adjacent and in rank order, copies joining their source lane's
    /// segment (a segment whose lanes all vanish is dropped).
    ///
    /// Identical semantics and paper-level operation counts to
    /// [`Machine::fanout_layout`] (which delegates here): one scan, two
    /// elementwise ops, one permutation. On the parallel backend the
    /// layout materialization runs blocked — input blocks write their
    /// disjoint output spans, with the vanished-segment-head pending
    /// flag carried block-to-block — and is bit-identical to the
    /// sequential reference.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != seg.len()`.
    pub fn flat_map_layout(&self, seg: &Segments, counts: &[u32]) -> FanoutLayout {
        assert_eq!(
            counts.len(),
            seg.len(),
            "flat-map: count length {} does not match segment descriptor length {}",
            counts.len(),
            seg.len()
        );
        let widened: Vec<u64> = self.map(counts, |c| c as u64);
        // F1: first output slot of each input lane (the room-making scan
        // of paper Fig. 14, generalized to arbitrary arity).
        let offsets = self.up_scan(&widened, Sum, ScanKind::Exclusive);
        let out_len: usize = counts.iter().map(|&c| c as usize).sum();

        // The elementwise position/rank derivation and the scatter that
        // writes every copy, fused into one kernel (the ew + permute of
        // Fig. 14).
        self.count_elementwise();
        self.count_permute();
        let (src_lane, rank, flags_out) = if self.use_par(out_len.max(seg.len())) {
            self.count_blocked_pass();
            layout_blocked(
                seg,
                counts,
                &offsets,
                out_len,
                self.block_elems::<u64>(),
                self.threads(),
            )
        } else {
            layout_seq(seg, counts, &offsets, out_len)
        };
        let seg_out = Segments::from_flags(flags_out)
            .expect("flat-map output either is empty or starts a segment at lane 0");
        FanoutLayout {
            src_lane,
            rank,
            seg: seg_out,
        }
    }

    /// Applies a flat-map layout with a per-copy function: output lane
    /// `j` is `f(data[src_lane[j]], rank[j])` — the gather and the
    /// downstream elementwise op fused into one sweep over the output.
    /// Counted as one permutation plus one elementwise operation.
    pub fn apply_flat_map<T, U, F>(&self, data: &[T], layout: &FanoutLayout, f: F) -> Vec<U>
    where
        T: Element,
        U: Element,
        F: Fn(T, u32) -> U + Send + Sync,
    {
        let mut out = Vec::new();
        self.apply_flat_map_into(data, layout, f, &mut out);
        out
    }

    /// [`Machine::apply_flat_map`] into a caller-provided buffer
    /// (cleared first). Lease the buffer from [`Machine::lease`] and the
    /// steady-state call is allocation-free.
    pub fn apply_flat_map_into<T, U, F>(
        &self,
        data: &[T],
        layout: &FanoutLayout,
        f: F,
        out: &mut Vec<U>,
    ) where
        T: Element,
        U: Element,
        F: Fn(T, u32) -> U + Send + Sync,
    {
        let n = layout.len();
        self.count_permute();
        self.count_elementwise();
        self.note_alloc_avoided(out.capacity(), n);
        self.count_bytes_moved(n * std::mem::size_of::<U>());
        crate::machine::fit_exact(out, n);
        if self.use_par(n) {
            self.count_blocked_pass();
            rayon::fault_checkpoint();
            let base = SyncPtr(out.as_mut_ptr());
            let src = &layout.src_lane;
            let rank = &layout.rank;
            rayon::for_each_block(n, self.block_elems::<U>(), |lo, hi| {
                for j in lo..hi {
                    // SAFETY: blocks are disjoint, so slot j is written by
                    // exactly one worker; fit_exact reserved capacity >= n
                    // and j < n, so the write lands in owned spare capacity.
                    unsafe { base.get().add(j).write(f(data[src[j]], rank[j])) };
                }
            });
            // SAFETY: the disjoint blocks cover 0..n exactly, so every
            // slot below n is initialized.
            unsafe { out.set_len(n) };
        } else {
            out.extend(
                layout
                    .src_lane
                    .iter()
                    .zip(layout.rank.iter())
                    .map(|(&s, &r)| f(data[s], r)),
            );
        }
    }

    /// One-call flat-map: computes the layout for `counts` and applies
    /// `f(value, rank)` to `data` through it. Returns the output vector
    /// and the layout (for reordering further parallel vectors and for
    /// the expanded segment descriptor).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != seg.len()` or `data.len() != seg.len()`.
    pub fn flat_map<T, U, F>(
        &self,
        seg: &Segments,
        data: &[T],
        counts: &[u32],
        f: F,
    ) -> (Vec<U>, FanoutLayout)
    where
        T: Element,
        U: Element,
        F: Fn(T, u32) -> U + Send + Sync,
    {
        let mut out = Vec::new();
        let layout = self.flat_map_into(seg, data, counts, f, &mut out);
        (out, layout)
    }

    /// [`Machine::flat_map`] into a caller-provided buffer (cleared
    /// first) — the arena-backed variant: lease `out` from the machine's
    /// arena and the apply pass allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != seg.len()` or `data.len() != seg.len()`.
    pub fn flat_map_into<T, U, F>(
        &self,
        seg: &Segments,
        data: &[T],
        counts: &[u32],
        f: F,
        out: &mut Vec<U>,
    ) -> FanoutLayout
    where
        T: Element,
        U: Element,
        F: Fn(T, u32) -> U + Send + Sync,
    {
        assert_eq!(
            data.len(),
            seg.len(),
            "flat-map: data length {} does not match segment descriptor length {}",
            data.len(),
            seg.len()
        );
        let layout = self.flat_map_layout(seg, counts);
        if layout.is_empty() {
            out.clear();
        } else {
            self.apply_flat_map_into(data, &layout, f, out);
        }
        layout
    }
}

/// Sequential reference layout materialization: one walk over the input
/// lanes, writing every copy's source lane and rank, with the
/// vanished-segment-head pending flag threaded lane to lane.
fn layout_seq(
    seg: &Segments,
    counts: &[u32],
    offsets: &[u64],
    out_len: usize,
) -> (Vec<usize>, Vec<u32>, Vec<bool>) {
    let mut src_lane = vec![0usize; out_len];
    let mut rank = vec![0u32; out_len];
    let mut flags_out = vec![false; out_len];
    let in_flags = seg.flags();
    let mut pending = false;
    for i in 0..seg.len() {
        let base = offsets[i] as usize;
        // A vanished segment head defers its boundary to the next
        // surviving lane of a later segment (matching how deletion drops
        // empty segments).
        pending |= in_flags[i];
        for r in 0..counts[i] {
            src_lane[base + r as usize] = i;
            rank[base + r as usize] = r;
        }
        if counts[i] > 0 {
            flags_out[base] = pending;
            pending = false;
        }
    }
    (src_lane, rank, flags_out)
}

/// Blocked layout materialization: input blocks own the disjoint output
/// spans `offsets[lo]..offsets[hi]`, so the copy writes parallelize
/// freely; the pending segment-head flag is the one cross-block
/// dependency and is carried with the same reduce → combine → apply
/// structure as a blocked scan. With one worker the phases collapse into
/// a single sweep identical to [`layout_seq`].
fn layout_blocked(
    seg: &Segments,
    counts: &[u32],
    offsets: &[u64],
    out_len: usize,
    block: usize,
    threads: usize,
) -> (Vec<usize>, Vec<u32>, Vec<bool>) {
    let n = seg.len();
    rayon::fault_checkpoint();
    let mut src_lane = vec![0usize; out_len];
    let mut rank = vec![0u32; out_len];
    let mut flags_out = vec![false; out_len];
    if n == 0 {
        return (src_lane, rank, flags_out);
    }
    let in_flags = seg.flags();
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    let nt = threads.min(nblocks).max(1);
    let src_base = SyncPtr(src_lane.as_mut_ptr());
    let rank_base = SyncPtr(rank.as_mut_ptr());
    let flag_base = SyncPtr(flags_out.as_mut_ptr());

    // The apply body for one block: the reference walk seeded with the
    // incoming pending flag, writing through the base pointers. Returns
    // the carry-out so the single-worker path can thread it onward.
    let apply = |lo: usize, hi: usize, mut pending: bool| -> bool {
        for i in lo..hi {
            let base = offsets[i] as usize;
            pending |= in_flags[i];
            for r in 0..counts[i] {
                // SAFETY: input blocks are disjoint and output spans
                // `offsets[lo]..offsets[hi]` are disjoint too (offsets is
                // a monotone prefix sum of counts), so each output slot
                // is written by exactly one worker; base + r < out_len.
                unsafe {
                    src_base.get().add(base + r as usize).write(i);
                    rank_base.get().add(base + r as usize).write(r);
                }
            }
            if counts[i] > 0 {
                // SAFETY: as above; `base` lies inside this block's span.
                unsafe { flag_base.get().add(base).write(pending) };
                pending = false;
            }
        }
        pending
    };

    if nt == 1 {
        // Single fused sweep: the pending carry threads straight through
        // the apply body block-to-block, touching each lane once.
        let mut pending = false;
        for b in 0..nblocks {
            let lo = b * block;
            let hi = (lo + block).min(n);
            pending = apply(lo, hi, pending);
        }
        return (src_lane, rank, flags_out);
    }

    // Phase 1 (block-reduce): per-block pending summaries.
    let mut summaries: Vec<PendingSummary> = vec![PendingSummary::default(); nblocks];
    {
        let sptr = SyncPtr(summaries.as_mut_ptr());
        rayon::for_each_block(n, block, |lo, hi| {
            let mut s = PendingSummary::default();
            for i in lo..hi {
                s.trailing_or |= in_flags[i];
                if counts[i] > 0 {
                    s.has_survivor = true;
                    s.trailing_or = false;
                }
            }
            // SAFETY: `lo / block` is a unique block index per call and
            // the summaries vec was sized to `nblocks`.
            unsafe { sptr.get().add(lo / block).write(s) };
        });
    }

    // Phase 2 (carry): exclusive combine of the pending flag across
    // blocks, sequential over the (few) blocks.
    let mut seeds: Vec<bool> = vec![false; nblocks];
    let mut carry = false;
    for (b, s) in summaries.iter().enumerate() {
        seeds[b] = carry;
        carry = if s.has_survivor {
            s.trailing_or
        } else {
            carry || s.trailing_or
        };
    }

    // Phase 3 (block-apply): the reference walk per block, seeded with
    // its carried-in pending flag, over the same worker-local ranges.
    rayon::for_each_block(n, block, |lo, hi| {
        let _ = apply(lo, hi, seeds[lo / block]);
    });
    (src_lane, rank, flags_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    /// A little deterministic LCG so the sweeps need no external
    /// randomness.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_case(n: usize, seed: u64) -> (Segments, Vec<u32>) {
        if n == 0 {
            return (Segments::single(0), Vec::new());
        }
        let mut s = seed;
        let mut lengths = Vec::new();
        let mut total = 0usize;
        while total < n {
            let len = (lcg(&mut s) as usize % 13 + 1).min(n - total);
            lengths.push(len);
            total += len;
        }
        let seg = Segments::from_lengths(&lengths).unwrap();
        let counts = (0..n).map(|_| (lcg(&mut s) % 5) as u32).collect();
        (seg, counts)
    }

    #[test]
    fn flat_map_layout_matches_fanout_layout() {
        for m in machines() {
            for n in [0usize, 1, 7, 64, 200, 1000] {
                let (seg, counts) = random_case(n, 0xF1A7 ^ n as u64);
                assert_eq!(
                    m.flat_map_layout(&seg, &counts),
                    m.fanout_layout(&seg, &counts),
                    "n={n}"
                );
            }
        }
    }

    /// The blocked layout path (parallel backend) is bit-identical to
    /// the sequential reference, including at block-boundary sizes and
    /// with vanished segments spanning whole blocks.
    #[test]
    fn blocked_layout_matches_reference_at_block_boundaries() {
        let seq = Machine::sequential();
        for block_elems in [1usize, 8, 64] {
            let block_bytes = block_elems * std::mem::size_of::<u64>();
            let par = Machine::new(Backend::Parallel)
                .with_par_threshold(1)
                .with_block_bytes(block_bytes);
            for n in [
                block_elems.saturating_sub(1),
                block_elems,
                block_elems + 1,
                3 * block_elems,
                3 * block_elems + 1,
            ] {
                for seed in [1u64, 9, 77] {
                    let (seg, counts) = random_case(n, seed);
                    assert_eq!(
                        seq.flat_map_layout(&seg, &counts),
                        par.flat_map_layout(&seg, &counts),
                        "n={n} block={block_elems} seed={seed}"
                    );
                }
            }
        }
    }

    /// Whole blocks of zero counts exercise the pending carry across
    /// invalid blocks (no survivor to absorb the flag).
    #[test]
    fn pending_flag_carries_across_empty_blocks() {
        let seq = Machine::sequential();
        let par = Machine::new(Backend::Parallel)
            .with_par_threshold(1)
            .with_block_bytes(4 * std::mem::size_of::<u64>());
        // Segments of length 3; lanes 4..=19 all vanish, so several
        // 4-lane blocks in the middle emit nothing and must forward
        // their segment-head flags.
        let n = 24;
        let seg = Segments::from_lengths(&[3; 8]).unwrap();
        let counts: Vec<u32> = (0..n).map(|i| u32::from(!(4..20).contains(&i))).collect();
        let a = seq.flat_map_layout(&seg, &counts);
        let b = par.flat_map_layout(&seg, &counts);
        assert_eq!(a, b);
        // All the vanished segments' boundaries collapse onto the next
        // survivor: lane 3 (head of segment 1) sits alone, lane 20
        // absorbs the five vanished heads in 4..20, and lane 21 starts
        // the last full segment.
        assert_eq!(a.seg.lengths(), vec![3, 1, 1, 3]);
    }

    #[test]
    fn apply_flat_map_matches_gather_then_map() {
        for m in machines() {
            let (seg, counts) = random_case(300, 42);
            let data: Vec<u64> = (0..300u64).map(|i| i * 3 + 1).collect();
            let layout = m.flat_map_layout(&seg, &counts);
            let gathered = m.apply_fanout(&data, &layout);
            let want: Vec<u64> = gathered
                .iter()
                .zip(layout.rank.iter())
                .map(|(&v, &r)| v * 10 + r as u64)
                .collect();
            let before = m.stats();
            let got = m.apply_flat_map(&data, &layout, |v, r| v * 10 + r as u64);
            let d = m.stats().since(&before);
            assert_eq!(got, want);
            // The fused apply is one permutation plus one elementwise op.
            assert_eq!(d.permutes, 1);
            assert_eq!(d.elementwise, 1);
            assert_eq!(d.scans, 0);
        }
    }

    #[test]
    fn flat_map_one_call_matches_composition() {
        for m in machines() {
            let (seg, counts) = random_case(100, 7);
            let data: Vec<u32> = (0..100u32).collect();
            let (out, layout) = m.flat_map(&seg, &data, &counts, |v, r| v + r);
            let want: Vec<u32> = layout
                .src_lane
                .iter()
                .zip(layout.rank.iter())
                .map(|(&s, &r)| data[s] + r)
                .collect();
            assert_eq!(out, want);
        }
    }

    #[test]
    fn flat_map_empty_output() {
        for m in machines() {
            let seg = Segments::from_lengths(&[2]).unwrap();
            let (out, layout) = m.flat_map(&seg, &[5u8, 6], &[0, 0], |v, _| v);
            assert!(out.is_empty());
            assert!(layout.is_empty());
        }
    }

    /// The layout keeps the pinned paper-level operation counts of a
    /// single cloning: one scan, two elementwise ops, one permutation —
    /// for any fan-out width, on both backends.
    #[test]
    fn layout_op_counts_are_one_cloning() {
        for m in machines() {
            let (seg, counts) = random_case(500, 3);
            let before = m.stats();
            let _ = m.flat_map_layout(&seg, &counts);
            let d = m.stats().since(&before);
            assert_eq!(d.scans, 1);
            assert_eq!(d.scan_passes, 1);
            assert_eq!(d.elementwise, 2);
            assert_eq!(d.permutes, 1);
            assert_eq!(d.sorts, 0);
        }
    }

    #[test]
    fn flat_map_into_reuses_warm_buffers() {
        let m = Machine::sequential();
        let (seg, counts) = random_case(64, 11);
        let data: Vec<u64> = (0..64).collect();
        let mut out: Vec<u64> = m.lease();
        let _ = m.flat_map_into(&seg, &data, &counts, |v, r| v + r as u64, &mut out);
        let cap = out.capacity();
        let before = m.stats();
        let _ = m.flat_map_into(&seg, &data, &counts, |v, r| v + r as u64, &mut out);
        let d = m.stats().since(&before);
        assert!(out.capacity() >= cap);
        assert!(d.allocs_avoided >= 1, "warm apply buffer was not reused");
        m.recycle(out);
    }
}
