//! A write-once scatter buffer for parallel permutation-style writes.
//!
//! The permutation and cloning primitives place each input lane at a
//! *precomputed, pairwise-distinct* target index. Writes to distinct
//! indices of one buffer from many threads are race-free, but safe Rust
//! cannot express "these scattered `&mut` accesses are disjoint" through a
//! slice, so [`ScatterBuf`] wraps the one required `unsafe` block behind an
//! interface whose callers must uphold (and in debug builds, are checked
//! for) the disjoint-full-coverage contract.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// Raw-pointer wrapper for disjoint parallel writes into a `Vec`'s spare
/// capacity (used by the `_into` permutation and fused-scan kernels,
/// where callers prove the written slots pairwise disjoint).
pub(crate) struct SyncPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor so closures capture the `Sync` wrapper, not the raw
    /// pointer field (which is not `Sync`).
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU8, Ordering};

/// A fixed-length buffer into which each slot must be written exactly once
/// before the buffer is finalized.
///
/// In debug builds every write and the final [`ScatterBuf::into_vec`] are
/// checked against a per-slot write counter; double writes, out-of-range
/// writes and missing writes panic with the offending index. In release
/// builds the checks compile away and writes are plain stores.
pub struct ScatterBuf<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    #[cfg(debug_assertions)]
    written: Box<[AtomicU8]>,
}

// SAFETY: concurrent access is only through `write`, whose contract
// requires distinct indices per call; distinct `UnsafeCell` slots written
// from different threads do not alias.
unsafe impl<T: Send> Sync for ScatterBuf<T> {}
unsafe impl<T: Send> Send for ScatterBuf<T> {}

impl<T> ScatterBuf<T> {
    /// Allocates a buffer of `len` uninitialized slots.
    pub fn new(len: usize) -> Self {
        let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..len)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        ScatterBuf {
            slots,
            #[cfg(debug_assertions)]
            written: (0..len).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the buffer has zero slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes `value` into slot `index`.
    ///
    /// # Contract
    ///
    /// Each index must be written **exactly once** across all threads
    /// before [`ScatterBuf::into_vec`] is called, and `index < len`.
    /// Violations are detected (with a panic) in debug builds and are
    /// undefined behaviour in release builds.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on out-of-range or duplicate writes.
    #[inline]
    pub fn write(&self, index: usize, value: T) {
        #[cfg(debug_assertions)]
        {
            assert!(
                index < self.slots.len(),
                "scatter write to index {index} out of bounds (len {})",
                self.slots.len()
            );
            let prev = self.written[index].fetch_add(1, Ordering::Relaxed);
            assert_eq!(prev, 0, "scatter slot {index} written twice");
        }
        // SAFETY: contract guarantees `index` in range and exclusive for
        // this call; `UnsafeCell` grants the raw pointer.
        unsafe {
            (*self.slots[index].get()).write(value);
        }
    }

    /// Finalizes the buffer into a `Vec<T>`.
    ///
    /// # Contract
    ///
    /// Every slot must have been written (checked in debug builds).
    ///
    /// # Panics
    ///
    /// In debug builds, panics naming the first unwritten slot.
    pub fn into_vec(self) -> Vec<T> {
        #[cfg(debug_assertions)]
        for (i, w) in self.written.iter().enumerate() {
            assert_eq!(
                w.load(Ordering::Relaxed),
                1,
                "scatter slot {i} was never written"
            );
        }
        let slots = self.slots;
        // SAFETY: every slot has been initialized exactly once per the
        // write contract. `UnsafeCell<MaybeUninit<T>>` has the same layout
        // as `T`, so transmuting the boxed slice reinterprets fully
        // initialized storage.
        let len = slots.len();
        let raw = Box::into_raw(slots);
        unsafe {
            let ptr = raw as *mut UnsafeCell<MaybeUninit<T>> as *mut T;
            Vec::from_raw_parts(ptr, len, len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_fill() {
        let buf = ScatterBuf::new(4);
        for i in 0..4 {
            buf.write(3 - i, i as u64);
        }
        assert_eq!(buf.into_vec(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn parallel_fill_is_complete() {
        let n = 10_000usize;
        let buf = ScatterBuf::new(n);
        (0..n).into_par_iter().for_each(|i| {
            buf.write((i * 7919) % n, i as u64); // 7919 coprime with 10000
        });
        let v = buf.into_vec();
        assert_eq!(v.len(), n);
        let mut seen = vec![false; n];
        for &x in &v {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn empty_buffer() {
        let buf: ScatterBuf<u32> = ScatterBuf::new(0);
        assert!(buf.is_empty());
        assert!(buf.into_vec().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "written twice")]
    fn duplicate_write_panics_in_debug() {
        let buf = ScatterBuf::new(2);
        buf.write(0, 1u32);
        buf.write(0, 2u32);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "never written")]
    fn missing_write_panics_in_debug() {
        let buf: ScatterBuf<u32> = ScatterBuf::new(2);
        buf.write(0, 1);
        let _ = buf.into_vec();
    }

    #[test]
    fn drop_semantics_with_heap_values() {
        // Non-Copy payloads must be moved out intact.
        let buf = ScatterBuf::new(3);
        buf.write(2, "c".to_string());
        buf.write(0, "a".to_string());
        buf.write(1, "b".to_string());
        assert_eq!(buf.into_vec(), vec!["a", "b", "c"]);
    }
}
