//! Sequential reference implementation of (segmented) scans.
//!
//! These functions implement the exact semantics of the paper's Fig. 8:
//!
//! * an **upward inclusive** scan returns
//!   `[a0, a0⊕a1, …, a0⊕…⊕a(n-1)]` within each segment;
//! * an **upward exclusive** scan returns
//!   `[id, a0, …, a0⊕…⊕a(n-2)]` within each segment;
//! * **downward** scans run from the right end of each segment instead.
//!
//! The parallel backend in [`crate::par`] must produce bit-identical output;
//! property tests assert this equivalence (experiment E24 in `DESIGN.md`).

use crate::ops::{CombineOp, Element};
use crate::vector::Segments;

/// Scan direction (paper: "upward" = left-to-right, "downward" =
/// right-to-left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Left-to-right.
    Up,
    /// Right-to-left.
    Down,
}

/// Whether a lane's own value participates in its output (paper: `in` /
/// `ex` in Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKind {
    /// Lane `i` receives the combine of lanes up to *and including* `i`.
    Inclusive,
    /// Lane `i` receives the combine of lanes strictly before `i` (the
    /// operator identity at segment heads).
    Exclusive,
}

/// Sequential segmented scan. `data.len()` must equal `seg.len()`.
///
/// # Panics
///
/// Panics if `data.len() != seg.len()`.
pub fn scan_seq<T, O>(data: &[T], seg: &Segments, op: O, dir: Direction, kind: ScanKind) -> Vec<T>
where
    T: Element,
    O: CombineOp<T>,
{
    let mut out = Vec::new();
    scan_seq_into(data, seg, op, dir, kind, &mut out);
    out
}

/// Sequential segmented scan writing into a caller-provided buffer, which
/// is cleared and resized first; an arena-leased buffer therefore incurs
/// no allocation once warm. Bit-identical to [`scan_seq`].
///
/// # Panics
///
/// Panics if `data.len() != seg.len()`.
pub fn scan_seq_into<T, O>(
    data: &[T],
    seg: &Segments,
    op: O,
    dir: Direction,
    kind: ScanKind,
    out: &mut Vec<T>,
) where
    T: Element,
    O: CombineOp<T>,
{
    assert_eq!(
        data.len(),
        seg.len(),
        "scan: data length {} does not match segment descriptor length {}",
        data.len(),
        seg.len()
    );
    out.clear();
    out.resize(data.len(), op.identity());
    match dir {
        Direction::Up => {
            for r in seg.ranges() {
                let mut acc = op.identity();
                let mut first = true;
                for i in r {
                    match kind {
                        ScanKind::Inclusive => {
                            acc = if first {
                                data[i]
                            } else {
                                op.combine(acc, data[i])
                            };
                            out[i] = acc;
                        }
                        ScanKind::Exclusive => {
                            out[i] = acc;
                            acc = if first {
                                data[i]
                            } else {
                                op.combine(acc, data[i])
                            };
                        }
                    }
                    first = false;
                }
            }
        }
        Direction::Down => {
            for r in seg.ranges() {
                let mut acc = op.identity();
                let mut first = true;
                for i in r.rev() {
                    match kind {
                        ScanKind::Inclusive => {
                            acc = if first {
                                data[i]
                            } else {
                                op.combine(data[i], acc)
                            };
                            out[i] = acc;
                        }
                        ScanKind::Exclusive => {
                            out[i] = acc;
                            acc = if first {
                                data[i]
                            } else {
                                op.combine(data[i], acc)
                            };
                        }
                    }
                    first = false;
                }
            }
        }
    }
}

/// Sequential unsegmented scan: a single segment covering the whole vector.
pub fn scan_seq_flat<T, O>(data: &[T], op: O, dir: Direction, kind: ScanKind) -> Vec<T>
where
    T: Element,
    O: CombineOp<T>,
{
    scan_seq(data, &Segments::single(data.len()), op, dir, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{First, Max, Min, Sum};

    fn fig8_data() -> (Vec<i64>, Segments) {
        (
            vec![3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3],
            Segments::from_lengths(&[3, 4, 2, 3]).unwrap(),
        )
    }

    /// Paper Fig. 8, row `up-scan(data,sf,+,in)`.
    #[test]
    fn fig8_up_inclusive() {
        let (data, seg) = fig8_data();
        let got = scan_seq(&data, &seg, Sum, Direction::Up, ScanKind::Inclusive);
        assert_eq!(got, vec![3, 4, 6, 1, 1, 2, 4, 2, 3, 0, 3, 6]);
    }

    /// Paper Fig. 8, row `up-scan(data,sf,+,ex)`.
    #[test]
    fn fig8_up_exclusive() {
        let (data, seg) = fig8_data();
        let got = scan_seq(&data, &seg, Sum, Direction::Up, ScanKind::Exclusive);
        assert_eq!(got, vec![0, 3, 4, 0, 1, 1, 2, 0, 2, 0, 0, 3]);
    }

    /// Paper Fig. 8, row `down-scan(data,sf,+,in)`.
    #[test]
    fn fig8_down_inclusive() {
        let (data, seg) = fig8_data();
        let got = scan_seq(&data, &seg, Sum, Direction::Down, ScanKind::Inclusive);
        assert_eq!(got, vec![6, 3, 2, 4, 3, 3, 2, 3, 1, 6, 6, 3]);
    }

    /// Paper Fig. 8, row `down-scan(data,sf,+,ex)`.
    #[test]
    fn fig8_down_exclusive() {
        let (data, seg) = fig8_data();
        let got = scan_seq(&data, &seg, Sum, Direction::Down, ScanKind::Exclusive);
        assert_eq!(got, vec![3, 2, 0, 3, 3, 2, 0, 1, 0, 6, 3, 0]);
    }

    #[test]
    fn min_max_scans() {
        let data = vec![4i64, 2, 7, 1, 9, 3];
        let seg = Segments::from_lengths(&[3, 3]).unwrap();
        assert_eq!(
            scan_seq(&data, &seg, Min, Direction::Up, ScanKind::Inclusive),
            vec![4, 2, 2, 1, 1, 1]
        );
        assert_eq!(
            scan_seq(&data, &seg, Max, Direction::Up, ScanKind::Inclusive),
            vec![4, 4, 7, 1, 9, 9]
        );
        assert_eq!(
            scan_seq(&data, &seg, Max, Direction::Down, ScanKind::Exclusive),
            vec![7, 7, i64::MIN, 9, 3, i64::MIN]
        );
    }

    #[test]
    fn copy_scan_broadcasts() {
        let data = vec![10u64, 0, 0, 20, 0];
        let seg = Segments::from_lengths(&[3, 2]).unwrap();
        let up = scan_seq(&data, &seg, First, Direction::Up, ScanKind::Inclusive);
        assert_eq!(up, vec![10, 10, 10, 20, 20]);
        let data = vec![0u64, 0, 10, 0, 20];
        let down = scan_seq(&data, &seg, First, Direction::Down, ScanKind::Inclusive);
        // Down inclusive copy-scan broadcasts the *last* lane of each
        // segment: combine(data[i], acc) with left projection keeps data[i]…
        // so each lane keeps itself? No: left projection keeps the first
        // argument, and the fold runs right-to-left with `data[i]` on the
        // left — acc never survives. Broadcasting the last lane therefore
        // uses `Last`-like behaviour, which `First` under Down direction
        // does NOT provide. This test pins the actual (lane-keeps-itself)
        // semantics so callers are not surprised.
        assert_eq!(down, vec![0, 0, 10, 0, 20]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i64> = Vec::new();
        let seg = Segments::single(0);
        assert!(scan_seq(&empty, &seg, Sum, Direction::Up, ScanKind::Inclusive).is_empty());
        let one = vec![5i64];
        let seg1 = Segments::single(1);
        assert_eq!(
            scan_seq(&one, &seg1, Sum, Direction::Up, ScanKind::Exclusive),
            vec![0]
        );
        assert_eq!(
            scan_seq(&one, &seg1, Sum, Direction::Down, ScanKind::Inclusive),
            vec![5]
        );
    }

    #[test]
    #[should_panic(expected = "does not match segment descriptor")]
    fn length_mismatch_panics() {
        let data = vec![1i64, 2];
        let seg = Segments::single(3);
        scan_seq(&data, &seg, Sum, Direction::Up, ScanKind::Inclusive);
    }

    #[test]
    fn flat_scan_equals_single_segment() {
        let data = vec![1i64, 2, 3, 4];
        let flat = scan_seq_flat(&data, Sum, Direction::Up, ScanKind::Inclusive);
        assert_eq!(flat, vec![1, 3, 6, 10]);
    }
}
