//! Reusable scratch buffers for long-lived machines.
//!
//! The service layer keeps one [`crate::Machine`] per index shard alive
//! across many batches. The machine itself is trivially reusable (all of
//! its state is atomic counters; see [`crate::Machine::reset_stats`]), but
//! the *algorithms* above it allocate frontier vectors per batch.
//! [`ScratchArena`] is a type-keyed pool of `Vec<T>` buffers that lets a
//! shard recycle those allocations: a buffer returned to the arena keeps
//! its capacity and is handed back (cleared) on the next request.
//!
//! ## Retained-byte cap and decay
//!
//! A pathological round (one huge clone cascade early in a build) would
//! otherwise pin its peak buffers in the pool forever. The arena therefore
//! tracks the bytes it retains and enforces a cap: buffers returned while
//! the pool is at capacity are dropped instead of pooled, and
//! [`ScratchArena::decay`] — called once per algorithm round via
//! [`crate::Machine::bump_rounds`] — halves the cap toward twice the bytes
//! actually reused in the elapsed round (never below [`MIN_CAP_BYTES`]),
//! evicting the coldest pooled buffers to fit. Steady-state workloads keep
//! their working set (the cap floors at 2× observed demand); one-off
//! spikes are forgotten within a few rounds.
//!
//! The arena is deliberately not thread-safe — each shard owns one behind
//! its own lock, which matches the one-arena-per-shard usage and keeps
//! `take`/`put` allocation-free in the steady state.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Floor for the retained-byte cap: [`ScratchArena::decay`] never shrinks
/// the cap below this, so small workloads always keep their buffers.
pub const MIN_CAP_BYTES: usize = 1 << 20; // 1 MiB

/// Initial retained-byte cap for a fresh arena.
pub const DEFAULT_CAP_BYTES: usize = 256 << 20; // 256 MiB

/// One pooled buffer plus the bytes its capacity pins.
#[derive(Debug)]
struct Pooled {
    buf: Box<dyn Any + Send>,
    bytes: usize,
    tname: &'static str,
}

/// A type-keyed pool of reusable `Vec<T>` scratch buffers with a decaying
/// retained-byte cap.
#[derive(Debug)]
pub struct ScratchArena {
    pools: HashMap<TypeId, Vec<Pooled>>,
    takes: u64,
    hits: u64,
    /// Bytes currently pinned by pooled (idle) buffers.
    retained_bytes: usize,
    /// Bytes currently out on lease: capacity handed out by
    /// [`ScratchArena::take`] pool hits that has not yet come back via
    /// [`ScratchArena::put`]. Together with `retained_bytes` this is the
    /// arena's live footprint.
    leased_bytes: usize,
    /// Lifetime maximum of the footprint (`retained_bytes` +
    /// `leased_bytes`). A returned buffer first *covers* outstanding
    /// leased bytes before it counts as new footprint, so a ping-pong
    /// slab (take → swap → put of the same-sized buffer) is counted
    /// once, not twice.
    high_water_bytes: usize,
    /// Bytes of pooled capacity handed back out since the last decay —
    /// the demand signal the cap floors against.
    epoch_used_bytes: usize,
    /// Current retained-byte cap.
    cap_bytes: usize,
    /// Buffers dropped (on put) or evicted (on decay) to honour the cap.
    evictions: u64,
}

impl Default for ScratchArena {
    fn default() -> Self {
        ScratchArena {
            pools: HashMap::new(),
            takes: 0,
            hits: 0,
            retained_bytes: 0,
            leased_bytes: 0,
            high_water_bytes: 0,
            epoch_used_bytes: 0,
            cap_bytes: DEFAULT_CAP_BYTES,
            evictions: 0,
        }
    }
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Hands out an empty `Vec<T>`, reusing the capacity of a previously
    /// returned buffer when one is pooled.
    pub fn take<T: Send + 'static>(&mut self) -> Vec<T> {
        self.takes += 1;
        if let Some(pool) = self.pools.get_mut(&TypeId::of::<Vec<T>>()) {
            if let Some(entry) = pool.pop() {
                self.hits += 1;
                // The capacity moves from idle to leased; the footprint
                // (retained + leased) is unchanged.
                self.retained_bytes -= entry.bytes;
                self.leased_bytes += entry.bytes;
                self.epoch_used_bytes += entry.bytes;
                return *entry
                    .buf
                    .downcast::<Vec<T>>()
                    .expect("pool keyed by TypeId");
            }
        }
        Vec::new()
    }

    /// Returns a buffer to the pool. The contents are cleared; the
    /// capacity is retained for the next [`ScratchArena::take`]. If
    /// pooling it would exceed the retained-byte cap, the coldest pooled
    /// buffers are evicted to make room (the incoming buffer is the warm
    /// one — it was just in use); a buffer larger than the whole cap is
    /// dropped outright.
    pub fn put<T: Send + 'static>(&mut self, mut buf: Vec<T>) {
        buf.clear();
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        // An incoming buffer first settles an outstanding lease of the
        // same size: in the ping-pong idiom (take a slab, swap it with a
        // caller buffer, put the swapped-out buffer) the returned bytes
        // are the *same* physical footprint that left on the take, so
        // counting them as new retained bytes on top of the lease would
        // double-count the slab in the high-water mark.
        let covered = bytes.min(self.leased_bytes);
        self.leased_bytes -= covered;
        if bytes > self.cap_bytes {
            self.evictions += 1;
            return; // dropping `buf` frees it
        }
        self.evict_until(self.cap_bytes - bytes);
        self.retained_bytes += bytes;
        let foot = self.retained_bytes + self.leased_bytes;
        if foot > self.high_water_bytes && std::env::var_os("DP_ARENA_LOG").is_some() {
            let mut sizes: Vec<(usize, &str)> = self
                .pools
                .values()
                .flat_map(|p| p.iter().map(|e| (e.bytes, e.tname)))
                .collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            eprintln!(
                "arena hw {} -> {} (retained {} leased {} incoming {} {}) pooled: {:?}",
                self.high_water_bytes,
                foot,
                self.retained_bytes,
                self.leased_bytes,
                bytes,
                std::any::type_name::<T>(),
                &sizes[..sizes.len().min(12)]
            );
        }
        self.high_water_bytes = self.high_water_bytes.max(foot);
        self.pools
            .entry(TypeId::of::<Vec<T>>())
            .or_default()
            .push(Pooled {
                buf: Box::new(buf),
                bytes,
                tname: std::any::type_name::<T>(),
            });
    }

    /// End-of-round maintenance: relax the retained-byte cap toward twice
    /// the capacity actually reused since the previous decay (halving at
    /// most per call, flooring at [`MIN_CAP_BYTES`]), then evict the
    /// coldest pooled buffers until the retained bytes fit the new cap.
    ///
    /// "Coldest" is the least-recently-pooled entry of the pool whose
    /// oldest entry pins the most bytes — pools serve as LIFO stacks, so
    /// the front of each stack has sat idle longest.
    pub fn decay(&mut self) {
        let demand = self.epoch_used_bytes.saturating_mul(2).max(MIN_CAP_BYTES);
        self.cap_bytes = demand.max(self.cap_bytes / 2);
        self.epoch_used_bytes = 0;
        self.evict_until(self.cap_bytes);
    }

    /// Simulated memory pressure for fault injection: clamps the cap to
    /// [`MIN_CAP_BYTES`] and evicts every pooled buffer. The arena stays
    /// fully functional — subsequent [`ScratchArena::take`] calls simply
    /// allocate fresh, and the cap regrows through [`ScratchArena::decay`]
    /// as real demand re-accumulates. Evictions are counted as usual.
    pub fn inject_pressure(&mut self) {
        self.cap_bytes = MIN_CAP_BYTES;
        self.evict_until(0);
    }

    /// Evicts coldest-first until at most `target` retained bytes remain.
    fn evict_until(&mut self, target: usize) {
        while self.retained_bytes > target {
            let victim = self
                .pools
                .iter()
                .filter(|(_, pool)| !pool.is_empty())
                .max_by_key(|(_, pool)| pool[0].bytes)
                .map(|(key, _)| *key);
            let Some(key) = victim else { break };
            let pool = self.pools.get_mut(&key).expect("victim pool exists");
            let entry = pool.remove(0);
            self.retained_bytes -= entry.bytes;
            self.evictions += 1;
        }
    }

    /// Number of buffers currently pooled (across all types).
    pub fn pooled(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }

    /// Bytes currently pinned by pooled buffers.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Bytes currently out on lease (taken from the pool, not yet put
    /// back).
    pub fn leased_bytes(&self) -> usize {
        self.leased_bytes
    }

    /// Lifetime maximum of the arena footprint: retained (idle pooled)
    /// plus leased (handed-out) bytes, with ping-pong slab reuse counted
    /// once (see [`ScratchArena::put`]).
    pub fn high_water_bytes(&self) -> usize {
        self.high_water_bytes
    }

    /// Current retained-byte cap (see [`ScratchArena::decay`]).
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Buffers dropped or evicted to honour the cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// `(takes, reuse hits)` — how often [`ScratchArena::take`] was served
    /// from the pool rather than a fresh allocation.
    pub fn reuse_stats(&self) -> (u64, u64) {
        (self.takes, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let mut arena = ScratchArena::new();
        let mut v: Vec<u32> = arena.take();
        v.extend(0..1000);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        arena.put(v);
        assert_eq!(arena.pooled(), 1);
        assert_eq!(arena.retained_bytes(), cap * std::mem::size_of::<u32>());
        let v2: Vec<u32> = arena.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(arena.reuse_stats(), (2, 1));
        assert_eq!(arena.retained_bytes(), 0);
    }

    #[test]
    fn pools_are_per_type() {
        let mut arena = ScratchArena::new();
        let mut ints: Vec<u64> = arena.take();
        ints.push(7);
        arena.put(ints);
        // A different element type must not be served the pooled buffer.
        let floats: Vec<f64> = arena.take();
        assert_eq!(floats.capacity(), 0);
        assert_eq!(arena.pooled(), 1);
        let ints_again: Vec<u64> = arena.take();
        assert!(ints_again.capacity() >= 1);
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn many_buffers_of_one_type() {
        let mut arena = ScratchArena::new();
        let a: Vec<u8> = Vec::with_capacity(16);
        let b: Vec<u8> = Vec::with_capacity(32);
        arena.put(a);
        arena.put(b);
        assert_eq!(arena.pooled(), 2);
        let _x: Vec<u8> = arena.take();
        let _y: Vec<u8> = arena.take();
        let z: Vec<u8> = arena.take();
        assert_eq!(z.capacity(), 0); // pool exhausted, fresh allocation
    }

    #[test]
    fn pathological_round_decays_back_to_working_set() {
        let mut arena = ScratchArena::new();

        // A pathological round pools one 8 MiB spike buffer.
        let spike: Vec<u8> = Vec::with_capacity(8 << 20);
        arena.put(spike);
        assert!(arena.high_water_bytes() >= 8 << 20);

        // Steady state afterwards: a small buffer cycles every round.
        let mut small: Vec<u64> = Vec::with_capacity(1024);
        for _ in 0..12 {
            arena.put(std::mem::take(&mut small));
            small = arena.take();
            assert!(small.capacity() >= 1024, "working set must stay pooled");
            arena.decay();
        }

        // The spike has been evicted (cap halved toward 2x observed
        // demand, floored at MIN_CAP_BYTES < 8 MiB)...
        assert!(arena.retained_bytes() < 8 << 20);
        assert!(arena.cap_bytes() >= MIN_CAP_BYTES);
        assert!(arena.evictions() >= 1);
        // ...while the high-water mark still records the spike and the
        // small working-set buffer keeps being reused.
        assert!(arena.high_water_bytes() >= 8 << 20);
        let (takes, hits) = arena.reuse_stats();
        assert_eq!(takes, hits, "every take after the spike was a pool hit");
    }

    #[test]
    fn inject_pressure_evicts_everything_but_stays_usable() {
        let mut arena = ScratchArena::new();
        let buf: Vec<u64> = Vec::with_capacity(4096);
        arena.put(buf);
        assert_eq!(arena.pooled(), 1);

        arena.inject_pressure();
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.retained_bytes(), 0);
        assert_eq!(arena.cap_bytes(), MIN_CAP_BYTES);
        assert!(arena.evictions() >= 1);

        // Fully functional afterwards: take allocates fresh, put pools
        // again under the clamped cap, and decay regrows from demand.
        let mut v: Vec<u64> = arena.take();
        v.extend(0..1000);
        arena.put(v);
        assert_eq!(arena.pooled(), 1);
        let v2: Vec<u64> = arena.take();
        assert!(v2.capacity() >= 1000, "pool serves capacity after pressure");
    }

    #[test]
    fn ping_pong_swap_does_not_double_count_high_water() {
        let mut arena = ScratchArena::new();
        let slab: Vec<u64> = Vec::with_capacity(1 << 16);
        let bytes = slab.capacity() * std::mem::size_of::<u64>();
        arena.put(slab);
        let hw0 = arena.high_water_bytes();
        assert_eq!(hw0, bytes);

        // Ping-pong: lease the pooled slab, swap it with a same-size
        // caller-owned buffer, return the swapped-out buffer. One slab's
        // worth of capacity cycles; the footprint never grows.
        let mut caller: Vec<u64> = Vec::with_capacity(1 << 16);
        for _ in 0..32 {
            let mut tmp: Vec<u64> = arena.take();
            assert!(tmp.capacity() * std::mem::size_of::<u64>() >= bytes);
            std::mem::swap(&mut caller, &mut tmp);
            arena.put(tmp);
        }
        assert_eq!(
            arena.high_water_bytes(),
            hw0,
            "a reused ping-pong slab must not double-count"
        );
        assert_eq!(arena.leased_bytes(), 0);
        assert_eq!(arena.retained_bytes(), bytes);
    }

    #[test]
    fn leased_bytes_track_outstanding_takes() {
        let mut arena = ScratchArena::new();
        let a: Vec<u64> = Vec::with_capacity(512);
        let b: Vec<u64> = Vec::with_capacity(512);
        let each = 512 * std::mem::size_of::<u64>();
        arena.put(a);
        arena.put(b);
        let x: Vec<u64> = arena.take();
        let y: Vec<u64> = arena.take();
        assert_eq!(arena.leased_bytes(), 2 * each);
        assert_eq!(arena.retained_bytes(), 0);
        arena.put(x);
        assert_eq!(arena.leased_bytes(), each);
        arena.put(y);
        assert_eq!(arena.leased_bytes(), 0);
        // Both returns covered leases — the footprint peak is still the
        // two original puts, not four buffers.
        assert_eq!(arena.high_water_bytes(), 2 * each);
    }

    #[test]
    fn put_over_cap_drops_instead_of_pooling() {
        let mut arena = ScratchArena::new();
        // Force the cap down to the floor.
        for _ in 0..20 {
            arena.decay();
        }
        assert_eq!(arena.cap_bytes(), MIN_CAP_BYTES);
        let big: Vec<u8> = Vec::with_capacity(2 * MIN_CAP_BYTES);
        arena.put(big);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.retained_bytes(), 0);
        assert_eq!(arena.evictions(), 1);
    }
}
