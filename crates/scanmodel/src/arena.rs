//! Reusable scratch buffers for long-lived machines.
//!
//! The service layer keeps one [`crate::Machine`] per index shard alive
//! across many batches. The machine itself is trivially reusable (all of
//! its state is atomic counters; see [`crate::Machine::reset_stats`]), but
//! the *algorithms* above it allocate frontier vectors per batch.
//! [`ScratchArena`] is a type-keyed pool of `Vec<T>` buffers that lets a
//! shard recycle those allocations: a buffer returned to the arena keeps
//! its capacity and is handed back (cleared) on the next request.
//!
//! The arena is deliberately not thread-safe — each shard owns one behind
//! its own lock, which matches the one-arena-per-shard usage and keeps
//! `take`/`put` allocation-free in the steady state.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A type-keyed pool of reusable `Vec<T>` scratch buffers.
#[derive(Debug, Default)]
pub struct ScratchArena {
    pools: HashMap<TypeId, Vec<Box<dyn Any + Send>>>,
    takes: u64,
    hits: u64,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Hands out an empty `Vec<T>`, reusing the capacity of a previously
    /// returned buffer when one is pooled.
    pub fn take<T: Send + 'static>(&mut self) -> Vec<T> {
        self.takes += 1;
        if let Some(pool) = self.pools.get_mut(&TypeId::of::<Vec<T>>()) {
            if let Some(buf) = pool.pop() {
                self.hits += 1;
                return *buf.downcast::<Vec<T>>().expect("pool keyed by TypeId");
            }
        }
        Vec::new()
    }

    /// Returns a buffer to the pool. The contents are cleared; the
    /// capacity is retained for the next [`ScratchArena::take`].
    pub fn put<T: Send + 'static>(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.pools
            .entry(TypeId::of::<Vec<T>>())
            .or_default()
            .push(Box::new(buf));
    }

    /// Number of buffers currently pooled (across all types).
    pub fn pooled(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }

    /// `(takes, reuse hits)` — how often [`ScratchArena::take`] was served
    /// from the pool rather than a fresh allocation.
    pub fn reuse_stats(&self) -> (u64, u64) {
        (self.takes, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let mut arena = ScratchArena::new();
        let mut v: Vec<u32> = arena.take();
        v.extend(0..1000);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        arena.put(v);
        assert_eq!(arena.pooled(), 1);
        let v2: Vec<u32> = arena.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(arena.reuse_stats(), (2, 1));
    }

    #[test]
    fn pools_are_per_type() {
        let mut arena = ScratchArena::new();
        let mut ints: Vec<u64> = arena.take();
        ints.push(7);
        arena.put(ints);
        // A different element type must not be served the pooled buffer.
        let floats: Vec<f64> = arena.take();
        assert_eq!(floats.capacity(), 0);
        assert_eq!(arena.pooled(), 1);
        let ints_again: Vec<u64> = arena.take();
        assert!(ints_again.capacity() >= 1);
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn many_buffers_of_one_type() {
        let mut arena = ScratchArena::new();
        let a: Vec<u8> = Vec::with_capacity(16);
        let b: Vec<u8> = Vec::with_capacity(32);
        arena.put(a);
        arena.put(b);
        assert_eq!(arena.pooled(), 2);
        let _x: Vec<u8> = arena.take();
        let _y: Vec<u8> = arena.take();
        let z: Vec<u8> = arena.take();
        assert_eq!(z.capacity(), 0); // pool exhausted, fresh allocation
    }
}
