//! Rayon-parallel backend for scans and elementwise operations.
//!
//! Segmented scans are parallelized with the classic blocked two-pass
//! scheme, generalized to segments by scanning *(reset, value)* pairs:
//!
//! ```text
//! (f1, v1) ⊕ (f2, v2) = (f1 ∨ f2, if f2 { v2 } else { v1 ⊕ v2 })
//! ```
//!
//! which is associative whenever the underlying operator is, so a segmented
//! scan is just an ordinary scan of pairs. Pass 1 computes per-block
//! summaries in parallel; a short sequential scan combines the block
//! summaries into per-block carries; pass 2 re-scans each block in parallel
//! seeded by its carry. The result is bit-identical to the sequential
//! reference implementation in [`crate::scan`] (asserted by property tests),
//! because each lane's value is combined in exactly the same order — the
//! blocking only reassociates, which associativity licenses. (For `f64`
//! sums, reassociation *does* change rounding; the carries are therefore
//! folded lane-by-lane rather than tree-wise so that sequential order is
//! preserved exactly.)

use crate::ops::{CombineOp, Element};
use crate::scan::{Direction, ScanKind};
use crate::vector::Segments;
use rayon::prelude::*;

/// Default minimum vector length before the parallel backend engages;
/// below this the sequential code is used even on the parallel backend.
/// Lowered from 4096 once the rayon shim gained a persistent worker pool:
/// dispatch now costs a queue push instead of per-call thread spawns, so
/// smaller vectors amortize it.
pub const PAR_THRESHOLD: usize = 2048;

/// Block length used for the two-pass scan, chosen so pass-1/pass-2 chunks
/// amortize rayon task overhead while leaving enough blocks for load
/// balancing. `threads` is the pool width, cached by the caller
/// ([`crate::machine::Machine`]) so it is not re-queried per primitive.
pub(crate) fn block_len(n: usize, threads: usize) -> usize {
    (n / (4 * threads.max(1))).max(1024)
}

/// Per-block summary of a (reset, value) pair scan: whether the block
/// contains a segment reset, and the pair-scan total of the block.
#[derive(Clone, Copy)]
struct BlockSummary<T> {
    has_reset: bool,
    total: Option<T>,
}

/// Parallel segmented scan; exact same semantics (and bit pattern) as
/// [`crate::scan::scan_seq`].
///
/// # Panics
///
/// Panics if `data.len() != seg.len()`.
pub fn scan_par<T, O>(data: &[T], seg: &Segments, op: O, dir: Direction, kind: ScanKind) -> Vec<T>
where
    T: Element,
    O: CombineOp<T>,
{
    let mut out = Vec::new();
    scan_par_into(
        data,
        seg,
        op,
        dir,
        kind,
        rayon::current_num_threads(),
        &mut out,
    );
    out
}

/// Parallel segmented scan writing into a caller-provided buffer (cleared
/// and resized first). `threads` is the cached pool width used for block
/// sizing. Bit-identical to [`crate::scan::scan_seq`].
///
/// # Panics
///
/// Panics if `data.len() != seg.len()`.
pub fn scan_par_into<T, O>(
    data: &[T],
    seg: &Segments,
    op: O,
    dir: Direction,
    kind: ScanKind,
    threads: usize,
    out: &mut Vec<T>,
) where
    T: Element,
    O: CombineOp<T>,
{
    assert_eq!(
        data.len(),
        seg.len(),
        "scan: data length {} does not match segment descriptor length {}",
        data.len(),
        seg.len()
    );
    let n = data.len();
    if n == 0 {
        out.clear();
        return;
    }
    match dir {
        Direction::Up => scan_par_up(data, seg, op, kind, threads, out),
        Direction::Down => scan_par_down(data, seg, op, kind, threads, out),
    }
}

fn scan_par_up<T, O>(
    data: &[T],
    seg: &Segments,
    op: O,
    kind: ScanKind,
    threads: usize,
    out: &mut Vec<T>,
) where
    T: Element,
    O: CombineOp<T>,
{
    let n = data.len();
    let flags = seg.flags();
    let blk = block_len(n, threads);
    let nblocks = n.div_ceil(blk);

    // Pass 1: per-block pair-scan totals, left-to-right within each block.
    let summaries: Vec<BlockSummary<T>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * blk;
            let hi = (lo + blk).min(n);
            let mut state: Option<T> = None;
            let mut has_reset = false;
            for i in lo..hi {
                if flags[i] {
                    has_reset = true;
                    state = Some(data[i]);
                } else {
                    state = Some(match state {
                        Some(s) => op.combine(s, data[i]),
                        None => data[i],
                    });
                }
            }
            BlockSummary {
                has_reset,
                total: state,
            }
        })
        .collect();

    // Sequential carry scan over block summaries.
    let mut carries: Vec<Option<T>> = Vec::with_capacity(nblocks);
    let mut carry: Option<T> = None;
    for s in &summaries {
        carries.push(carry);
        carry = if s.has_reset {
            s.total
        } else {
            match (carry, s.total) {
                (Some(c), Some(t)) => Some(op.combine(c, t)),
                (None, t) => t,
                (c, None) => c,
            }
        };
    }

    // Pass 2: re-scan each block seeded with its carry.
    out.clear();
    out.resize(n, op.identity());
    out.par_chunks_mut(blk).enumerate().for_each(|(b, chunk)| {
        let lo = b * blk;
        let mut state: Option<T> = carries[b];
        for (j, slot) in chunk.iter_mut().enumerate() {
            let i = lo + j;
            let before = state;
            if flags[i] {
                state = Some(data[i]);
            } else {
                state = Some(match state {
                    Some(s) => op.combine(s, data[i]),
                    None => data[i],
                });
            }
            *slot = match kind {
                ScanKind::Inclusive => state.expect("inclusive scan state must exist"),
                ScanKind::Exclusive => {
                    if flags[i] {
                        op.identity()
                    } else {
                        before.expect("non-head lane must have a predecessor in its segment")
                    }
                }
            };
        }
    });
}

fn scan_par_down<T, O>(
    data: &[T],
    seg: &Segments,
    op: O,
    kind: ScanKind,
    threads: usize,
    out: &mut Vec<T>,
) where
    T: Element,
    O: CombineOp<T>,
{
    let n = data.len();
    // Downward resets sit at segment *ends*.
    let ends: Vec<bool> = {
        let flags = seg.flags();
        (0..n).map(|i| i + 1 == n || flags[i + 1]).collect()
    };
    let blk = block_len(n, threads);
    let nblocks = n.div_ceil(blk);

    // Pass 1: per-block pair-scan totals, right-to-left within each block.
    let summaries: Vec<BlockSummary<T>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * blk;
            let hi = (lo + blk).min(n);
            let mut state: Option<T> = None;
            let mut has_reset = false;
            for i in (lo..hi).rev() {
                if ends[i] {
                    has_reset = true;
                    state = Some(data[i]);
                } else {
                    state = Some(match state {
                        Some(s) => op.combine(data[i], s),
                        None => data[i],
                    });
                }
            }
            BlockSummary {
                has_reset,
                total: state,
            }
        })
        .collect();

    // Sequential carry scan over block summaries, right-to-left. The carry
    // entering block b is the pair-scan state of everything to its right.
    let mut carries: Vec<Option<T>> = vec![None; nblocks];
    let mut carry: Option<T> = None;
    for b in (0..nblocks).rev() {
        carries[b] = carry;
        let s = &summaries[b];
        carry = if s.has_reset {
            s.total
        } else {
            match (s.total, carry) {
                (Some(t), Some(c)) => Some(op.combine(t, c)),
                (t, None) => t,
                (None, c) => c,
            }
        };
    }

    out.clear();
    out.resize(n, op.identity());
    out.par_chunks_mut(blk).enumerate().for_each(|(b, chunk)| {
        let lo = b * blk;
        let mut state: Option<T> = carries[b];
        for (j, slot) in chunk.iter_mut().enumerate().rev() {
            let i = lo + j;
            let before = state;
            if ends[i] {
                state = Some(data[i]);
            } else {
                state = Some(match state {
                    Some(s) => op.combine(data[i], s),
                    None => data[i],
                });
            }
            *slot = match kind {
                ScanKind::Inclusive => state.expect("inclusive scan state must exist"),
                ScanKind::Exclusive => {
                    if ends[i] {
                        op.identity()
                    } else {
                        before.expect("non-tail lane must have a successor in its segment")
                    }
                }
            };
        }
    });
}

/// Parallel unary elementwise map.
pub fn map_par<T, U, F>(data: &[T], f: F) -> Vec<U>
where
    T: Element,
    U: Element,
    F: Fn(T) -> U + Send + Sync,
{
    data.par_iter().map(|&x| f(x)).collect()
}

/// Parallel unary elementwise map into a caller-provided buffer.
pub fn map_par_into<T, U, F>(data: &[T], f: F, out: &mut Vec<U>)
where
    T: Element,
    U: Element,
    F: Fn(T) -> U + Send + Sync,
{
    data.par_iter().map(|&x| f(x)).collect_into_vec(out);
}

/// Parallel binary elementwise map into a caller-provided buffer.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn zip_map_par_into<A, B, U, F>(a: &[A], b: &[B], f: F, out: &mut Vec<U>)
where
    A: Element,
    B: Element,
    U: Element,
    F: Fn(A, B) -> U + Send + Sync,
{
    assert_eq!(
        a.len(),
        b.len(),
        "elementwise: vector lengths {} and {} differ",
        a.len(),
        b.len()
    );
    a.par_iter()
        .zip(b.par_iter())
        .map(|(&x, &y)| f(x, y))
        .collect_into_vec(out);
}

/// Parallel fused multi-lane elementwise fill: evaluates `f(i)` once per
/// index across disjoint blocks and scatters the K results into the K
/// output buffers through raw base pointers. One pass regardless of K.
pub fn fill_lanes_par_into<T, F, const K: usize>(
    n: usize,
    f: &F,
    threads: usize,
    outs: &mut [Vec<T>; K],
) where
    T: Element + Default,
    F: Fn(usize) -> [T; K] + Sync,
{
    for out in outs.iter_mut() {
        out.clear();
        out.resize(n, T::default());
    }
    if n == 0 {
        return;
    }
    let bases: [crate::scatter::SyncPtr<T>; K] =
        std::array::from_fn(|l| crate::scatter::SyncPtr(outs[l].as_mut_ptr()));
    let blk = block_len(n, threads);
    let nblocks = n.div_ceil(blk);
    (0..nblocks).into_par_iter().for_each(|b| {
        let lo = b * blk;
        let hi = (lo + blk).min(n);
        for i in lo..hi {
            let vals = f(i);
            for (l, v) in vals.into_iter().enumerate() {
                // SAFETY: slot i of lane l is written exactly once, by the
                // block owning index i; blocks are disjoint and i < n,
                // within each out's resized length.
                unsafe { bases[l].get().add(i).write(v) };
            }
        }
    });
}

/// Parallel binary elementwise map (paper Fig. 9 generalized to any `f`).
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn zip_map_par<A, B, U, F>(a: &[A], b: &[B], f: F) -> Vec<U>
where
    A: Element,
    B: Element,
    U: Element,
    F: Fn(A, B) -> U + Send + Sync,
{
    assert_eq!(
        a.len(),
        b.len(),
        "elementwise: vector lengths {} and {} differ",
        a.len(),
        b.len()
    );
    a.par_iter()
        .zip(b.par_iter())
        .map(|(&x, &y)| f(x, y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Max, Min, Sum};
    use crate::scan::scan_seq;

    fn compare_all_modes(data: &[i64], seg: &Segments) {
        for dir in [Direction::Up, Direction::Down] {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                assert_eq!(
                    scan_par(data, seg, Sum, dir, kind),
                    scan_seq(data, seg, Sum, dir, kind),
                    "Sum {dir:?} {kind:?}"
                );
                assert_eq!(
                    scan_par(data, seg, Min, dir, kind),
                    scan_seq(data, seg, Min, dir, kind),
                    "Min {dir:?} {kind:?}"
                );
                assert_eq!(
                    scan_par(data, seg, Max, dir, kind),
                    scan_seq(data, seg, Max, dir, kind),
                    "Max {dir:?} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_fig8() {
        let data = vec![3i64, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3];
        let seg = Segments::from_lengths(&[3, 4, 2, 3]).unwrap();
        compare_all_modes(&data, &seg);
    }

    #[test]
    fn matches_sequential_on_large_irregular_segments() {
        // Deterministic pseudo-random data large enough to span many blocks.
        let n = 40_000usize;
        let mut state = 0x243F_6A88u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let data: Vec<i64> = (0..n).map(|_| (next() % 1000) as i64 - 500).collect();
        let mut lengths = Vec::new();
        let mut covered = 0usize;
        while covered < n {
            let l = ((next() % 97) + 1) as usize;
            let l = l.min(n - covered);
            lengths.push(l);
            covered += l;
        }
        let seg = Segments::from_lengths(&lengths).unwrap();
        compare_all_modes(&data, &seg);
    }

    #[test]
    fn matches_sequential_single_giant_segment() {
        let n = 30_000usize;
        let data: Vec<i64> = (0..n).map(|i| (i % 7) as i64 - 3).collect();
        let seg = Segments::single(n);
        compare_all_modes(&data, &seg);
    }

    #[test]
    fn empty_input() {
        let data: Vec<i64> = Vec::new();
        let seg = Segments::single(0);
        assert!(scan_par(&data, &seg, Sum, Direction::Up, ScanKind::Inclusive).is_empty());
    }

    #[test]
    fn zip_map_matches_fig9() {
        let a = vec![0i64, 1, 2, 1, 4, 3, 6, 2, 9, 5];
        let b = vec![4i64, 7, 2, 0, 3, 6, 1, 5, 0, 4];
        let got = zip_map_par(&a, &b, |x, y| x + y);
        assert_eq!(got, vec![4, 8, 4, 1, 7, 9, 7, 7, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "lengths")]
    fn zip_map_length_mismatch_panics() {
        zip_map_par(&[1i64], &[1i64, 2], |x, y| x + y);
    }
}
