//! Cache-blocked scan kernels: block-reduce → block-scan → block-apply
//! in one structure, with the reset structure read inline.
//!
//! The original parallel kernels ([`crate::par`], [`crate::fused`]) are
//! correct but memory-bound: every scan walks the full vector twice
//! (summary pass + rescan pass) and materializes a `Vec<bool>` of fold
//! resets per call, so a scan round streams ~3n elements through DRAM
//! where the sequential kernel streams n. These kernels restructure the
//! same pair-scan decomposition (Gu, Obeya & Shun, *Parallel In-Place
//! Algorithms*) around fixed-size cache blocks:
//!
//! * the fold-restart structure is computed from the segment flags
//!   *inside* the walk (`crate::fused::ResetView`) — no resets vector;
//! * blocks are [`block_elems`]-sized (an L2-ish byte budget, see
//!   [`tuned_block_bytes`]), not `n / threads`-sized, so each block's
//!   summary and rescan touch cache-resident data;
//! * blocks are dealt to workers as contiguous ranges
//!   ([`rayon::for_each_block`]) so the reduce and apply phases revisit
//!   the same worker-local spans;
//! * with a single worker the two phases collapse into **one** sweep:
//!   the carry threads straight through the rescan body block-to-block,
//!   touching each element exactly once and reproducing the sequential
//!   kernel's pure directional fold bit-for-bit.
//!
//! Numerical contract: the single-worker sweep is always bit-identical
//! to the sequential kernel. The multi-worker two-phase path folds
//! block totals exactly like [`crate::par`] does, so lanes whose
//! operator is associative under rounding (all integer ops, f64
//! Min/Max, integer-valued f64 sums) are bit-identical at any block
//! size; fractional f64 sums additionally require that no segment
//! fully contain a block — the same contract the unblocked parallel
//! kernels have always had.
//!
//! [`crate::Machine`] routes parallel-backend scans here once `n`
//! crosses its threshold; the unblocked kernels remain as the reference
//! the differential tests compare against.

use std::sync::OnceLock;

use crate::fused::{
    block_rescan, block_summary, check_lanes, dispatch_width, FusedElement, FusedOp, LaneState,
    ResetView, MAX_FUSED_WIDTH,
};
use crate::ops::{CombineOp, Element, Sum};
use crate::scan::{Direction, ScanKind};
use crate::scatter::SyncPtr;
use crate::vector::Segments;

/// Smallest block a caller can configure, in elements. Below this the
/// per-block bookkeeping dominates the walk.
pub const MIN_BLOCK_ELEMS: usize = 64;

/// Fallback block byte budget when calibration is unavailable: 256 KiB,
/// a conservative slice of a typical per-core L2.
pub const DEFAULT_BLOCK_BYTES: usize = 1 << 18;

/// The process-wide block byte budget, resolved once:
///
/// 1. `DP_BLOCK` (bytes, decimal) if set and positive — the operator
///    override documented in the README;
/// 2. otherwise a one-shot calibration sweep over power-of-two L2-sized
///    candidates (64 KiB – 1 MiB) timing a small blocked sum scan.
///
/// Cached in a `OnceLock`: machines are constructed per shard and in
/// thousands of tests, and the right block size is a property of the
/// hardware, not of any one machine.
pub fn tuned_block_bytes() -> usize {
    static TUNED: OnceLock<usize> = OnceLock::new();
    *TUNED.get_or_init(|| {
        if let Ok(raw) = std::env::var("DP_BLOCK") {
            if let Ok(bytes) = raw.trim().parse::<usize>() {
                if bytes > 0 {
                    return bytes;
                }
            }
        }
        calibrate_block_bytes()
    })
}

/// Power-of-two sweep over L2-sized candidates: time a small blocked sum
/// scan at each candidate and keep the fastest. The scan is tiny (64 Ki
/// u64 lanes, ~0.5 MB) so calibration costs well under a millisecond per
/// candidate; correctness never depends on the choice.
fn calibrate_block_bytes() -> usize {
    use std::time::Instant;
    let n: usize = 1 << 16;
    let data: Vec<u64> = (0..n as u64).collect();
    let flags: Vec<bool> = (0..n).map(|i| i % 97 == 0).collect();
    let seg = Segments::from_flags(flags).expect("calibration flags start with a segment head");
    let threads = rayon::current_num_threads();
    let mut out: Vec<u64> = Vec::with_capacity(n);
    let mut best = (u128::MAX, DEFAULT_BLOCK_BYTES);
    for shift in 16..=20 {
        let bytes = 1usize << shift;
        let blk = block_elems::<u64>(bytes);
        let mut fastest = u128::MAX;
        // One warm-up run per candidate, then best-of-3.
        for rep in 0..4 {
            let t0 = Instant::now();
            scan_blocked_into(
                &data,
                &seg,
                Sum,
                Direction::Up,
                ScanKind::Inclusive,
                blk,
                threads,
                &mut out,
            );
            let dt = t0.elapsed().as_nanos();
            if rep > 0 {
                fastest = fastest.min(dt);
            }
        }
        if fastest < best.0 {
            best = (fastest, bytes);
        }
    }
    best.1
}

/// Converts a block byte budget into a per-`T` element count, floored at
/// [`MIN_BLOCK_ELEMS`].
pub fn block_elems<T>(block_bytes: usize) -> usize {
    (block_bytes / std::mem::size_of::<T>().max(1)).max(MIN_BLOCK_ELEMS)
}

/// Per-block pair-scan state for a single generic operator (the K-lane
/// fused kernels carry [`LaneState`] instead).
#[derive(Clone, Copy)]
struct Carry<T> {
    valid: bool,
    state: T,
}

/// Directional combine with the sequential kernel's operand order (state
/// on the walk side), for an arbitrary [`CombineOp`].
#[inline(always)]
fn combine_op_dir<T, O>(op: &O, dir: Direction, state: T, d: T) -> T
where
    T: Element,
    O: CombineOp<T>,
{
    match dir {
        Direction::Up => op.combine(state, d),
        Direction::Down => op.combine(d, state),
    }
}

/// Blocked segmented scan for one generic operator, bit-identical to
/// [`crate::scan::scan_seq_into`]. `block` is in elements (see
/// [`block_elems`]); `threads` chooses between the single fused sweep
/// (one worker) and the two-phase blocked decomposition.
///
/// # Panics
///
/// Panics if `data.len() != seg.len()`.
#[allow(clippy::too_many_arguments)]
pub fn scan_blocked_into<T, O>(
    data: &[T],
    seg: &Segments,
    op: O,
    dir: Direction,
    kind: ScanKind,
    block: usize,
    threads: usize,
    out: &mut Vec<T>,
) where
    T: Element,
    O: CombineOp<T>,
{
    assert_eq!(
        data.len(),
        seg.len(),
        "scan: data length {} does not match segment descriptor length {}",
        data.len(),
        seg.len()
    );
    let n = data.len();
    out.clear();
    out.resize(n, op.identity());
    if n == 0 {
        return;
    }
    let resets = ResetView::new(seg, dir);
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    let nt = threads.min(nblocks).max(1);
    let base = SyncPtr(out.as_mut_ptr());
    let empty = Carry {
        valid: false,
        state: op.identity(),
    };

    if nt == 1 {
        // Single fused sweep: reduce, scan and apply collapse into one
        // pass — the carry threads block-to-block through the rescan
        // body, so each element is loaded and stored exactly once. The
        // checkpoint keeps fault-injection coverage identical to the
        // pooled multi-worker path.
        rayon::fault_checkpoint();
        let mut seed = empty;
        match dir {
            Direction::Up => {
                for b in 0..nblocks {
                    let lo = b * block;
                    let hi = (lo + block).min(n);
                    seed = rescan_range(lo..hi, seed, resets, data, &op, dir, kind, &base);
                }
            }
            Direction::Down => {
                for b in (0..nblocks).rev() {
                    let lo = b * block;
                    let hi = (lo + block).min(n);
                    seed = rescan_range((lo..hi).rev(), seed, resets, data, &op, dir, kind, &base);
                }
            }
        }
        return;
    }

    // Phase 1 (block-reduce): per-block pair-scan summaries, workers
    // walking contiguous block ranges.
    let mut summaries: Vec<(bool, Carry<T>)> = vec![(false, empty); nblocks];
    {
        let sptr = SyncPtr(summaries.as_mut_ptr());
        rayon::for_each_block(n, block, |lo, hi| {
            let s = match dir {
                Direction::Up => summary_range(lo..hi, resets, data, &op, dir),
                Direction::Down => summary_range((lo..hi).rev(), resets, data, &op, dir),
            };
            // SAFETY: `lo / block` is a unique block index per call and
            // the summaries vec was sized to `nblocks`.
            unsafe { sptr.get().add(lo / block).write(s) };
        });
    }

    // Phase 2 (block-scan): exclusive scan of block totals, sequential
    // over the (few) blocks, in walk order.
    let mut carries: Vec<Carry<T>> = vec![empty; nblocks];
    let mut carry = empty;
    let order: Box<dyn Iterator<Item = usize>> = match dir {
        Direction::Up => Box::new(0..nblocks),
        Direction::Down => Box::new((0..nblocks).rev()),
    };
    for b in order {
        carries[b] = carry;
        let (has_reset, total) = summaries[b];
        if has_reset || !carry.valid {
            carry = total;
        } else if total.valid {
            carry.state = combine_op_dir(&op, dir, carry.state, total.state);
        }
    }

    // Phase 3 (block-apply): re-scan each block seeded with its carry,
    // same worker-local block ranges as the reduce.
    rayon::for_each_block(n, block, |lo, hi| {
        let b = lo / block;
        let _ = match dir {
            Direction::Up => rescan_range(lo..hi, carries[b], resets, data, &op, dir, kind, &base),
            Direction::Down => rescan_range(
                (lo..hi).rev(),
                carries[b],
                resets,
                data,
                &op,
                dir,
                kind,
                &base,
            ),
        };
    });
}

/// Reduce body for one block: pair-scan total plus whether the block
/// contains a fold reset.
#[inline(always)]
fn summary_range<T, O>(
    walk: impl Iterator<Item = usize>,
    resets: ResetView<'_>,
    data: &[T],
    op: &O,
    dir: Direction,
) -> (bool, Carry<T>)
where
    T: Element,
    O: CombineOp<T>,
{
    let mut s = Carry {
        valid: false,
        state: op.identity(),
    };
    let mut has_reset = false;
    for i in walk {
        let r = resets.at(i);
        if r || !s.valid {
            has_reset |= r;
            s.valid = true;
            s.state = data[i];
        } else {
            s.state = combine_op_dir(op, dir, s.state, data[i]);
        }
    }
    (has_reset, s)
}

/// Apply body for one block: re-scan seeded with the block's carry,
/// writing outputs through the base pointer; returns the carry-out so
/// the single-worker path can thread it into the next block.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rescan_range<T, O>(
    walk: impl Iterator<Item = usize>,
    mut seed: Carry<T>,
    resets: ResetView<'_>,
    data: &[T],
    op: &O,
    dir: Direction,
    kind: ScanKind,
    base: &SyncPtr<T>,
) -> Carry<T>
where
    T: Element,
    O: CombineOp<T>,
{
    for i in walk {
        let reset = resets.at(i);
        let fresh = reset || !seed.valid;
        debug_assert!(
            !fresh || reset || !matches!(kind, ScanKind::Exclusive),
            "interior lane must have a neighbour in its segment"
        );
        let d = data[i];
        let before = seed.state;
        let next = if fresh {
            d
        } else {
            combine_op_dir(op, dir, before, d)
        };
        let value = match kind {
            ScanKind::Inclusive => next,
            ScanKind::Exclusive => {
                if reset {
                    op.identity()
                } else {
                    before
                }
            }
        };
        seed.state = next;
        seed.valid = true;
        // SAFETY: slot i is written exactly once, by the walk owning
        // index i; i < n and `out` was resized to n before `base` was
        // taken.
        unsafe { base.get().add(i).write(value) };
    }
    seed
}

/// Blocked multi-lane fused scan, bit-identical per lane to
/// [`crate::fused::scan_lanes_seq_into`]. Lane chunks wider than
/// [`MAX_FUSED_WIDTH`] are processed in chunks exactly as the unblocked
/// kernels do.
///
/// # Panics
///
/// Panics if `lanes.len() != outs.len()` or any lane's length differs
/// from `seg.len()`.
pub fn scan_lanes_blocked_into<T: FusedElement>(
    lanes: &[(&[T], FusedOp)],
    seg: &Segments,
    dir: Direction,
    kind: ScanKind,
    block: usize,
    threads: usize,
    outs: &mut [Vec<T>],
) {
    check_lanes(lanes, seg, outs);
    let n = seg.len();
    if n == 0 {
        for out in outs.iter_mut() {
            out.clear();
        }
        return;
    }
    let resets = ResetView::new(seg, dir);
    let block = block.max(1);
    let mut at = 0;
    while at < lanes.len() {
        let w = (lanes.len() - at).min(MAX_FUSED_WIDTH);
        let chunk = &lanes[at..at + w];
        let outs_chunk = &mut outs[at..at + w];
        dispatch_width!(
            w,
            blocked_kernel(chunk, resets, block, threads, dir, kind, outs_chunk)
        );
        at += w;
    }
}

fn blocked_kernel<T: FusedElement, const K: usize>(
    lanes: &[(&[T], FusedOp)],
    resets: ResetView<'_>,
    block: usize,
    threads: usize,
    dir: Direction,
    kind: ScanKind,
    outs: &mut [Vec<T>],
) {
    let n = resets.len();
    let datas: [&[T]; K] = std::array::from_fn(|l| lanes[l].0);
    let ops: [FusedOp; K] = std::array::from_fn(|l| lanes[l].1);
    let idents: [T; K] = std::array::from_fn(|l| T::fused_identity(ops[l]));
    for (out, &id) in outs.iter_mut().zip(idents.iter()) {
        out.clear();
        out.resize(n, id);
    }
    let bases: [SyncPtr<T>; K] = std::array::from_fn(|l| SyncPtr(outs[l].as_mut_ptr()));
    let nblocks = n.div_ceil(block);
    let nt = threads.min(nblocks).max(1);
    let empty = LaneState {
        valid: false,
        state: idents,
    };

    if nt == 1 {
        // Single fused sweep over all K lanes (see scan_blocked_into).
        rayon::fault_checkpoint();
        let mut seed = empty;
        match dir {
            Direction::Up => {
                for b in 0..nblocks {
                    let lo = b * block;
                    let hi = (lo + block).min(n);
                    seed = block_rescan::<T, K>(
                        lo..hi,
                        seed,
                        resets,
                        &datas,
                        &ops,
                        &idents,
                        dir,
                        kind,
                        &bases,
                    );
                }
            }
            Direction::Down => {
                for b in (0..nblocks).rev() {
                    let lo = b * block;
                    let hi = (lo + block).min(n);
                    seed = block_rescan::<T, K>(
                        (lo..hi).rev(),
                        seed,
                        resets,
                        &datas,
                        &ops,
                        &idents,
                        dir,
                        kind,
                        &bases,
                    );
                }
            }
        }
        return;
    }

    // Block-reduce on worker-local block ranges.
    let mut summaries: Vec<(bool, LaneState<T, K>)> = vec![(false, empty); nblocks];
    {
        let sptr = SyncPtr(summaries.as_mut_ptr());
        rayon::for_each_block(n, block, |lo, hi| {
            let s = match dir {
                Direction::Up => block_summary::<T, K>(lo..hi, resets, &datas, &ops, dir, &idents),
                Direction::Down => {
                    block_summary::<T, K>((lo..hi).rev(), resets, &datas, &ops, dir, &idents)
                }
            };
            // SAFETY: `lo / block` is a unique block index per call and
            // the summaries vec was sized to `nblocks`.
            unsafe { sptr.get().add(lo / block).write(s) };
        });
    }

    // Block-scan of summaries, lane-by-lane in the unfused fold order.
    let mut carries: Vec<LaneState<T, K>> = vec![empty; nblocks];
    let mut carry = empty;
    let order: Box<dyn Iterator<Item = usize>> = match dir {
        Direction::Up => Box::new(0..nblocks),
        Direction::Down => Box::new((0..nblocks).rev()),
    };
    for b in order {
        carries[b] = carry;
        let (has_reset, total) = &summaries[b];
        if *has_reset || !carry.valid {
            carry = *total;
        } else if total.valid {
            for ((c, &op), &t) in carry
                .state
                .iter_mut()
                .zip(ops.iter())
                .zip(total.state.iter())
            {
                *c = crate::fused::combine_dir(op, dir, *c, t);
            }
        }
    }

    // Block-apply on the same worker-local block ranges.
    rayon::for_each_block(n, block, |lo, hi| {
        let b = lo / block;
        let _ = match dir {
            Direction::Up => block_rescan::<T, K>(
                lo..hi,
                carries[b],
                resets,
                &datas,
                &ops,
                &idents,
                dir,
                kind,
                &bases,
            ),
            Direction::Down => block_rescan::<T, K>(
                (lo..hi).rev(),
                carries[b],
                resets,
                &datas,
                &ops,
                &idents,
                dir,
                kind,
                &bases,
            ),
        };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::scan_lanes_seq_into;
    use crate::ops::{First, Max, Min};
    use crate::scan::scan_seq;

    fn irregular_segments(n: usize, seed: u64) -> Segments {
        if n == 0 {
            return Segments::single(0);
        }
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut lengths = Vec::new();
        let mut covered = 0usize;
        while covered < n {
            let l = (((next() % 37) + 1) as usize).min(n - covered);
            lengths.push(l);
            covered += l;
        }
        Segments::from_lengths(&lengths).unwrap()
    }

    /// Blocked single-op scans are bit-identical to the sequential
    /// reference at every boundary-adjacent size, for tiny blocks and
    /// both the single-sweep and two-phase paths.
    #[test]
    fn blocked_scan_matches_seq_at_boundaries() {
        for &n in &[0usize, 1, 7, 63, 64, 65, 127, 128, 129, 1000, 4097] {
            let data: Vec<i64> = (0..n).map(|i| (i % 23) as i64 - 11).collect();
            let seg = irregular_segments(n, 0xDEAD_BEEF ^ n as u64);
            for &block in &[8usize, 64, 4096] {
                for &threads in &[1usize, 4] {
                    for dir in [Direction::Up, Direction::Down] {
                        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                            let want = scan_seq(&data, &seg, Sum, dir, kind);
                            let mut got = Vec::new();
                            scan_blocked_into(
                                &data, &seg, Sum, dir, kind, block, threads, &mut got,
                            );
                            assert_eq!(
                                got, want,
                                "n={n} block={block} threads={threads} {dir:?} {kind:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Non-commutative operators (First) keep the sequential operand
    /// order through the blocked carry fold.
    #[test]
    fn blocked_scan_respects_non_commutative_ops() {
        let n = 513;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
        let seg = irregular_segments(n, 42);
        for dir in [Direction::Up, Direction::Down] {
            let want = scan_seq(&data, &seg, First, dir, ScanKind::Inclusive);
            let mut got = Vec::new();
            scan_blocked_into(
                &data,
                &seg,
                First,
                dir,
                ScanKind::Inclusive,
                16,
                4,
                &mut got,
            );
            assert_eq!(got, want, "{dir:?}");
        }
        let want = scan_seq(&data, &seg, Min, Direction::Up, ScanKind::Exclusive);
        let mut got = Vec::new();
        scan_blocked_into(
            &data,
            &seg,
            Min,
            Direction::Up,
            ScanKind::Exclusive,
            16,
            4,
            &mut got,
        );
        assert_eq!(got, want);
    }

    /// Blocked fused lanes are bit-identical to the sequential fused
    /// kernel, including f64 lanes, wider-than-max chunking, and both
    /// scheduling paths.
    #[test]
    fn blocked_lanes_match_seq_kernel() {
        for &n in &[0usize, 1, 63, 64, 65, 500, 4097] {
            let a: Vec<f64> = (0..n).map(|i| (i % 19) as f64 / 3.0 - 2.5).collect();
            let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 31) as f64 * 0.81).collect();
            let seg = irregular_segments(n, 0xFEED ^ n as u64);
            let lanes: Vec<(&[f64], FusedOp)> = vec![
                (&a, FusedOp::Sum),
                (&a, FusedOp::Min),
                (&b, FusedOp::Max),
                (&b, FusedOp::Sum),
                (&a, FusedOp::Max),
                (&b, FusedOp::Min),
                (&a, FusedOp::Sum),
                (&b, FusedOp::Max),
                (&a, FusedOp::Min),
            ];
            // Two-phase scheduling (threads > 1) carries block totals the
            // way `crate::par` does, so fractional f64 sums are grouped
            // per block: bit-identity to the sequential fold then needs
            // no segment to fully contain a block (block=64 > the max
            // segment length of 37 here). The single-worker sweep
            // (threads = 1) is the pure fold and is exact at any block.
            for &(block, threads) in &[(8usize, 1usize), (64, 1), (64, 4), (4096, 4)] {
                {
                    for dir in [Direction::Up, Direction::Down] {
                        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                            let mut want: Vec<Vec<f64>> = vec![Vec::new(); lanes.len()];
                            scan_lanes_seq_into(&lanes, &seg, dir, kind, &mut want);
                            let mut got: Vec<Vec<f64>> = vec![Vec::new(); lanes.len()];
                            scan_lanes_blocked_into(
                                &lanes, &seg, dir, kind, block, threads, &mut got,
                            );
                            assert_eq!(
                                got, want,
                                "n={n} block={block} threads={threads} {dir:?} {kind:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// A single giant segment spanning many blocks exercises the carry
    /// fold across invalid/valid block states.
    #[test]
    fn blocked_giant_segment_spans_blocks() {
        let n = 10_000usize;
        let data: Vec<i64> = (0..n).map(|i| (i % 13) as i64 - 6).collect();
        let seg = Segments::single(n);
        for &threads in &[1usize, 4] {
            let want = scan_seq(&data, &seg, Max, Direction::Down, ScanKind::Inclusive);
            let mut got = Vec::new();
            scan_blocked_into(
                &data,
                &seg,
                Max,
                Direction::Down,
                ScanKind::Inclusive,
                64,
                threads,
                &mut got,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn tuned_block_bytes_is_positive_and_stable() {
        let a = tuned_block_bytes();
        let b = tuned_block_bytes();
        assert!(a >= 1);
        assert_eq!(a, b, "calibration must resolve once per process");
        assert!(block_elems::<u64>(a) >= MIN_BLOCK_ELEMS);
        assert_eq!(block_elems::<u8>(1024), 1024);
        assert_eq!(block_elems::<u64>(1024), 128);
        // The floor kicks in for huge elements / tiny budgets.
        assert_eq!(block_elems::<[u8; 4096]>(1024), MIN_BLOCK_ELEMS);
    }
}
