//! Pair-expansion (fan-out) kernel: the frontier-growth primitive behind
//! the data-parallel spatial join.
//!
//! The paper's *cloning* primitive (Sec. 4.1) inserts one copy next to
//! each flagged lane; frontier algorithms — the batch query descent and
//! especially the spatial-join pair frontier — repeatedly need the
//! generalized form "replicate lane `i` exactly `copies[i]` times",
//! e.g. fanning a coarser block out against the finer tree's four
//! children. Composing that from adjacent clonings costs `log₂(max
//! fan-out)` cloning passes; [`Machine::fanout_layout`] computes the same
//! layout with the *same mechanics as one cloning* (paper Fig. 14): one
//! unsegmented exclusive `+`-scan over the copy counts yields each lane's
//! output offset, one elementwise op turns offsets into output positions,
//! and one scatter pass materializes the copies, each stamped with its
//! copy *rank* so downstream elementwise steps can address "the r-th
//! child" directly.
//!
//! The layout is gather-form ([`FanoutLayout::src_lane`]), so applying it
//! to the several parallel vectors of a frontier costs one permutation
//! op per vector, exactly like [`crate::primitives::CloneLayout`].

use crate::machine::Machine;
use crate::ops::Element;
use crate::vector::Segments;

/// Result of a fan-out layout computation ([`Machine::fanout_layout`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutLayout {
    /// For each output lane, the input lane it is a copy of. Copies of a
    /// lane are adjacent and in rank order (the generalization of the
    /// original-then-clone adjacency of paper Fig. 14).
    pub src_lane: Vec<usize>,
    /// For each output lane, its copy index within its source lane's run
    /// (`0..copies[src_lane]`).
    pub rank: Vec<u32>,
    /// The segment descriptor after expansion: every copy joins its
    /// source lane's segment. Lanes with zero copies vanish; a segment
    /// whose lanes all vanish is dropped from the descriptor.
    pub seg: Segments,
}

impl FanoutLayout {
    /// Number of output lanes.
    pub fn len(&self) -> usize {
        self.src_lane.len()
    }

    /// `true` when the layout covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.src_lane.is_empty()
    }
}

impl Machine {
    /// Computes the fan-out layout: lane `i` of the input is replicated
    /// `copies[i]` times (zero deletes the lane), copies adjacent and in
    /// rank order.
    ///
    /// Mechanics: an unsegmented upward **exclusive** `+`-scan of
    /// `copies` gives each lane's first output position (`F1`, the
    /// generalized room-making scan of paper Fig. 14); one elementwise
    /// pass combines position and rank; one scatter pass writes the
    /// copies. Counted as one scan, one elementwise op and one
    /// permutation — the paper-level cost of a single cloning, for any
    /// fan-out width.
    ///
    /// The fan-out is the counts-lane half of the general flat-map
    /// primitive, and since the latter landed this is a thin alias for
    /// [`Machine::flat_map_layout`] (same layout, same counts, blocked
    /// materialization on the parallel backend).
    ///
    /// # Panics
    ///
    /// Panics if `copies.len() != seg.len()`.
    pub fn fanout_layout(&self, seg: &Segments, copies: &[u32]) -> FanoutLayout {
        self.flat_map_layout(seg, copies)
    }

    /// Applies a fan-out layout to one data vector (gather form).
    pub fn apply_fanout<T: Element>(&self, data: &[T], layout: &FanoutLayout) -> Vec<T> {
        self.gather(data, &layout.src_lane)
    }

    /// Applies a fan-out layout into a caller-provided buffer (cleared
    /// first).
    pub fn apply_fanout_into<T: Element>(
        &self,
        data: &[T],
        layout: &FanoutLayout,
        out: &mut Vec<T>,
    ) {
        self.gather_into(data, &layout.src_lane, out);
    }

    /// Applies a fan-out layout **through the ping-pong slab**: the gather
    /// lands in a buffer leased from the machine's arena, which is swapped
    /// into `data` and the old storage recycled. A general fan-out moves
    /// lanes both leftward (after a zero-copy lane) and rightward (after a
    /// multi-copy lane), so unlike deletion or cloning it admits no
    /// single-direction in-place sweep; the leased slab bounds the
    /// footprint at one extra buffer regardless of how many vectors the
    /// frontier expands. Counted as the gather plus one in-place reuse.
    pub fn apply_fanout_swap<T: Element>(&self, data: &mut Vec<T>, layout: &FanoutLayout) {
        let mut tmp: Vec<T> = self.lease();
        self.apply_fanout_into(data, layout, &mut tmp);
        std::mem::swap(data, &mut tmp);
        self.recycle(tmp);
        self.count_inplace_reuse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    #[test]
    fn uniform_fanout_four() {
        for m in machines() {
            let data = vec![10u32, 20, 30];
            let seg = Segments::single(3);
            let layout = m.fanout_layout(&seg, &[4, 4, 4]);
            assert_eq!(layout.len(), 12);
            let out = m.apply_fanout(&data, &layout);
            assert_eq!(out, vec![10, 10, 10, 10, 20, 20, 20, 20, 30, 30, 30, 30]);
            assert_eq!(layout.rank, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
            assert_eq!(layout.seg.num_segments(), 1);
        }
    }

    #[test]
    fn mixed_counts_including_zero() {
        for m in machines() {
            let data = vec!['a', 'b', 'c', 'd'];
            let seg = Segments::single(4);
            let layout = m.fanout_layout(&seg, &[2, 0, 1, 3]);
            let out = m.apply_fanout(&data, &layout);
            assert_eq!(out, vec!['a', 'a', 'c', 'd', 'd', 'd']);
            assert_eq!(layout.rank, vec![0, 1, 0, 0, 1, 2]);
        }
    }

    #[test]
    fn copies_join_source_segment() {
        for m in machines() {
            let seg = Segments::from_lengths(&[2, 1]).unwrap();
            let layout = m.fanout_layout(&seg, &[1, 2, 2]);
            assert_eq!(layout.seg.lengths(), vec![3, 2]);
            assert_eq!(layout.src_lane, vec![0, 1, 1, 2, 2]);
        }
    }

    #[test]
    fn vanished_segment_is_dropped() {
        for m in machines() {
            let seg = Segments::from_lengths(&[1, 1, 1]).unwrap();
            let layout = m.fanout_layout(&seg, &[2, 0, 1]);
            assert_eq!(layout.seg.lengths(), vec![2, 1]);
        }
    }

    #[test]
    fn zero_everything_is_empty() {
        for m in machines() {
            let seg = Segments::from_lengths(&[2]).unwrap();
            let layout = m.fanout_layout(&seg, &[0, 0]);
            assert!(layout.is_empty());
            assert_eq!(layout.seg.len(), 0);
            let out = m.apply_fanout(&[1u8, 2], &layout);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn fanout_one_is_identity() {
        for m in machines() {
            let data = vec![7i64, 8, 9];
            let seg = Segments::from_lengths(&[1, 2]).unwrap();
            let layout = m.fanout_layout(&seg, &[1, 1, 1]);
            assert_eq!(m.apply_fanout(&data, &layout), data);
            assert_eq!(layout.seg, seg);
            assert_eq!(layout.rank, vec![0, 0, 0]);
        }
    }

    #[test]
    fn counts_one_scan_one_ew_one_permute_for_layout() {
        let m = Machine::sequential();
        let seg = Segments::single(5);
        let before = m.stats();
        let _ = m.fanout_layout(&seg, &[4; 5]);
        let d = m.stats().since(&before);
        assert_eq!(d.scans, 1);
        assert_eq!(d.scan_passes, 1);
        // One counted layout ew plus the `map` that widens the counts.
        assert_eq!(d.elementwise, 2);
        assert_eq!(d.permutes, 1);
    }

    #[test]
    fn fanout_swap_matches_gather() {
        for m in machines() {
            let data: Vec<u64> = (0..20).collect();
            let seg = Segments::single(20);
            let copies: Vec<u32> = (0..20).map(|i| (i % 4) as u32).collect();
            let layout = m.fanout_layout(&seg, &copies);
            let expect = m.apply_fanout(&data, &layout);
            let before = m.stats();
            let mut in_place = data.clone();
            m.apply_fanout_swap(&mut in_place, &layout);
            let d = m.stats().since(&before);
            assert_eq!(in_place, expect);
            assert_eq!(d.permutes, 1);
            assert_eq!(d.inplace_reuses, 1);
        }
    }

    #[test]
    fn matches_two_adjacent_clonings() {
        // A uniform ×4 fan-out reorders lanes exactly like two successive
        // clone-everything passes.
        for m in machines() {
            let data: Vec<u32> = (0..9).collect();
            let seg = Segments::single(9);
            let fan = m.apply_fanout(&data, &m.fanout_layout(&seg, &[4; 9]));
            let all = vec![true; 9];
            let double = m.clone_layout(&seg, &all);
            let once = m.apply_clone(&data, &double);
            let all2 = vec![true; once.len()];
            let quad = m.clone_layout(&double.seg, &all2);
            let twice = m.apply_clone(&once, &quad);
            assert_eq!(fan, twice);
        }
    }
}
