//! The vector machine: backend selection plus primitive-operation counters.
//!
//! [`Machine`] is the single entry point through which the spatial
//! algorithms issue primitive operations. It plays the role of the CM-5 in
//! the paper: the algorithms above it are written purely in terms of scans,
//! elementwise operations and permutations, and the machine decides how to
//! execute them (sequential reference backend, or rayon data-parallel
//! blocked execution) and counts them.
//!
//! The counters matter for the reproduction: the paper's complexity claims
//! are phrased in *numbers of primitive operations per construction stage*
//! ("a constant number of scans, clonings, and un-shuffles", Sec. 5.1), so
//! `EXPERIMENTS.md` verifies them by reading [`OpStats`] snapshots rather
//! than wall-clock time alone.

use crate::ops::{CombineOp, Element};
use crate::par::{self, PAR_THRESHOLD};
use crate::permute::{permute_par, permute_seq};
use crate::scan::{scan_seq, Direction, ScanKind};
use crate::vector::Segments;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Execution backend for primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Every primitive executes on the calling thread; the reference
    /// implementation.
    Sequential,
    /// Primitives over vectors longer than the machine's parallel threshold
    /// execute on the rayon thread pool. Results are bit-identical to the
    /// sequential backend.
    #[default]
    Parallel,
}

/// Monotonic counters of primitive operations issued through a [`Machine`].
#[derive(Debug, Default)]
pub struct OpStats {
    scans: AtomicU64,
    elementwise: AtomicU64,
    permutes: AtomicU64,
    sorts: AtomicU64,
    rounds: AtomicU64,
}

/// A point-in-time copy of [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Segmented or unsegmented scan operations.
    pub scans: u64,
    /// Elementwise (map / zip-map) operations.
    pub elementwise: u64,
    /// Permutation / gather operations.
    pub permutes: u64,
    /// Segmented sort operations (each counts once, regardless of length).
    pub sorts: u64,
    /// Algorithm-level iteration rounds recorded via [`Machine::bump_rounds`].
    pub rounds: u64,
}

impl StatsSnapshot {
    /// Total primitive operations (excluding `rounds`, which is a
    /// higher-level marker, not a machine primitive).
    pub fn total_primitives(&self) -> u64 {
        self.scans + self.elementwise + self.permutes + self.sorts
    }

    /// Lane-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            scans: self.scans - earlier.scans,
            elementwise: self.elementwise - earlier.elementwise,
            permutes: self.permutes - earlier.permutes,
            sorts: self.sorts - earlier.sorts,
            rounds: self.rounds - earlier.rounds,
        }
    }
}

/// The software vector machine. Cheap to share by reference; all state is
/// interior-mutable atomics.
#[derive(Debug, Default)]
pub struct Machine {
    backend: Backend,
    par_threshold: usize,
    stats: OpStats,
}

impl Machine {
    /// A machine with the given backend and the default parallel threshold.
    pub fn new(backend: Backend) -> Self {
        Machine {
            backend,
            par_threshold: PAR_THRESHOLD,
            stats: OpStats::default(),
        }
    }

    /// A sequential reference machine.
    pub fn sequential() -> Self {
        Machine::new(Backend::Sequential)
    }

    /// A parallel machine using the global rayon pool.
    pub fn parallel() -> Self {
        Machine::new(Backend::Parallel)
    }

    /// Overrides the minimum vector length at which the parallel backend
    /// engages (useful to force parallel paths in tests).
    pub fn with_par_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = threshold;
        self
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn use_par(&self, n: usize) -> bool {
        self.backend == Backend::Parallel && n >= self.par_threshold
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            scans: self.stats.scans.load(Ordering::Relaxed),
            elementwise: self.stats.elementwise.load(Ordering::Relaxed),
            permutes: self.stats.permutes.load(Ordering::Relaxed),
            sorts: self.stats.sorts.load(Ordering::Relaxed),
            rounds: self.stats.rounds.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset_stats(&self) {
        self.stats.scans.store(0, Ordering::Relaxed);
        self.stats.elementwise.store(0, Ordering::Relaxed);
        self.stats.permutes.store(0, Ordering::Relaxed);
        self.stats.sorts.store(0, Ordering::Relaxed);
        self.stats.rounds.store(0, Ordering::Relaxed);
    }

    /// Records one algorithm-level round (a subdivision stage in the build
    /// algorithms of paper Section 5).
    pub fn bump_rounds(&self) {
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one elementwise operation performed by composite-algorithm
    /// code outside the machine's own `map`/`zip_map` (e.g. a fused
    /// multi-input classification pass). Keeps the op accounting honest
    /// when an algorithm implements a paper-level elementwise step as a
    /// plain loop over more than two vectors.
    pub fn note_elementwise(&self) {
        self.count_elementwise();
    }

    /// Records one scan operation performed outside the machine (see
    /// [`Machine::note_elementwise`]).
    pub fn note_scan(&self) {
        self.count_scan();
    }

    /// Records one permutation performed outside the machine (see
    /// [`Machine::note_elementwise`]).
    pub fn note_permute(&self) {
        self.count_permute();
    }

    pub(crate) fn count_scan(&self) {
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_elementwise(&self) {
        self.stats.elementwise.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_permute(&self) {
        self.stats.permutes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_sort(&self) {
        self.stats.sorts.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Scan primitives (paper Sec. 3.2.1)
    // ------------------------------------------------------------------

    /// Segmented scan in either direction.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != seg.len()`.
    pub fn scan<T, O>(
        &self,
        data: &[T],
        seg: &Segments,
        op: O,
        dir: Direction,
        kind: ScanKind,
    ) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.count_scan();
        if self.use_par(data.len()) {
            par::scan_par(data, seg, op, dir, kind)
        } else {
            scan_seq(data, seg, op, dir, kind)
        }
    }

    /// Upward segmented scan (convenience over [`Machine::scan`]).
    pub fn up_scan_seg<T, O>(&self, data: &[T], seg: &Segments, op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(data, seg, op, Direction::Up, kind)
    }

    /// Downward segmented scan (convenience over [`Machine::scan`]).
    pub fn down_scan_seg<T, O>(&self, data: &[T], seg: &Segments, op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(data, seg, op, Direction::Down, kind)
    }

    /// Unsegmented upward scan over the whole vector.
    pub fn up_scan<T, O>(&self, data: &[T], op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(data, &Segments::single(data.len()), op, Direction::Up, kind)
    }

    /// Unsegmented downward scan over the whole vector.
    pub fn down_scan<T, O>(&self, data: &[T], op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(
            data,
            &Segments::single(data.len()),
            op,
            Direction::Down,
            kind,
        )
    }

    // ------------------------------------------------------------------
    // Elementwise primitives (paper Sec. 3.2.2)
    // ------------------------------------------------------------------

    /// Unary elementwise map.
    pub fn map<T, U, F>(&self, data: &[T], f: F) -> Vec<U>
    where
        T: Element,
        U: Element,
        F: Fn(T) -> U + Send + Sync,
    {
        self.count_elementwise();
        if self.use_par(data.len()) {
            par::map_par(data, f)
        } else {
            data.iter().map(|&x| f(x)).collect()
        }
    }

    /// Binary elementwise map (paper Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn zip_map<A, B, U, F>(&self, a: &[A], b: &[B], f: F) -> Vec<U>
    where
        A: Element,
        B: Element,
        U: Element,
        F: Fn(A, B) -> U + Send + Sync,
    {
        self.count_elementwise();
        if self.use_par(a.len()) {
            par::zip_map_par(a, b, f)
        } else {
            assert_eq!(
                a.len(),
                b.len(),
                "elementwise: vector lengths {} and {} differ",
                a.len(),
                b.len()
            );
            a.iter().zip(b.iter()).map(|(&x, &y)| f(x, y)).collect()
        }
    }

    // ------------------------------------------------------------------
    // Permutation primitives (paper Sec. 3.2.3)
    // ------------------------------------------------------------------

    /// Scatter permutation: `out[index[i]] = data[i]` with `index` a
    /// bijection on `0..n` (paper Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `index` is not one-to-one.
    pub fn permute<T: Element>(&self, data: &[T], index: &[usize]) -> Vec<T> {
        self.count_permute();
        if self.use_par(data.len()) {
            permute_par(data, index)
        } else {
            permute_seq(data, index)
        }
    }

    /// Gather: `out[j] = data[order[j]]`. The inverse view of a
    /// permutation; counted as a permutation op.
    ///
    /// # Panics
    ///
    /// Panics if any order entry is out of bounds.
    pub fn gather<T: Element>(&self, data: &[T], order: &[usize]) -> Vec<T> {
        self.count_permute();
        if self.use_par(order.len()) {
            order.par_iter().map(|&i| data[i]).collect()
        } else {
            order.iter().map(|&i| data[i]).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Sum;

    #[test]
    fn stats_count_operations() {
        let m = Machine::sequential();
        let data = vec![1i64, 2, 3, 4];
        let seg = Segments::single(4);
        let _ = m.up_scan_seg(&data, &seg, Sum, ScanKind::Inclusive);
        let _ = m.map(&data, |x| x + 1);
        let _ = m.zip_map(&data, &data, |a, b| a + b);
        let _ = m.permute(&data, &[3, 2, 1, 0]);
        let _ = m.gather(&data, &[0, 0, 1]);
        m.bump_rounds();
        let s = m.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.elementwise, 2);
        assert_eq!(s.permutes, 2);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.total_primitives(), 5);
        m.reset_stats();
        assert_eq!(m.stats(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let m = Machine::sequential();
        let data = vec![1i64, 2];
        let _ = m.up_scan(&data, Sum, ScanKind::Inclusive);
        let before = m.stats();
        let _ = m.up_scan(&data, Sum, ScanKind::Inclusive);
        let _ = m.up_scan(&data, Sum, ScanKind::Inclusive);
        let delta = m.stats().since(&before);
        assert_eq!(delta.scans, 2);
    }

    #[test]
    fn backends_agree_below_and_above_threshold() {
        let seq = Machine::sequential();
        let par = Machine::parallel().with_par_threshold(1);
        let n = 10_000usize;
        let data: Vec<i64> = (0..n as i64).map(|i| i % 11 - 5).collect();
        let seg = Segments::from_lengths(&[n / 2, n / 2]).unwrap();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            for dir in [Direction::Up, Direction::Down] {
                assert_eq!(
                    seq.scan(&data, &seg, Sum, dir, kind),
                    par.scan(&data, &seg, Sum, dir, kind)
                );
            }
        }
        let idx: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        assert_eq!(seq.permute(&data, &idx), par.permute(&data, &idx));
        assert_eq!(
            seq.zip_map(&data, &data, |a, b| a * b),
            par.zip_map(&data, &data, |a, b| a * b)
        );
    }

    #[test]
    fn gather_basic() {
        let m = Machine::sequential();
        let data = vec![10u32, 20, 30];
        assert_eq!(m.gather(&data, &[2, 0, 2]), vec![30, 10, 30]);
    }
}
