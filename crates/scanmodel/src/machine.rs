//! The vector machine: backend selection plus primitive-operation counters.
//!
//! [`Machine`] is the single entry point through which the spatial
//! algorithms issue primitive operations. It plays the role of the CM-5 in
//! the paper: the algorithms above it are written purely in terms of scans,
//! elementwise operations and permutations, and the machine decides how to
//! execute them (sequential reference backend, or rayon data-parallel
//! blocked execution) and counts them.
//!
//! The counters matter for the reproduction: the paper's complexity claims
//! are phrased in *numbers of primitive operations per construction stage*
//! ("a constant number of scans, clonings, and un-shuffles", Sec. 5.1), so
//! `EXPERIMENTS.md` verifies them by reading [`OpStats`] snapshots rather
//! than wall-clock time alone.

use crate::arena::ScratchArena;
use crate::blocked;
use crate::fault::{FaultPlan, FaultSite};
use crate::fused::{self, FusedElement, FusedOp};
use crate::ops::{CombineOp, Element};
use crate::par::{self, PAR_THRESHOLD};
use crate::permute::{permute_par_into, permute_seq_into};
use crate::scan::{scan_seq_into, Direction, ScanKind};
use crate::vector::Segments;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Execution backend for primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Every primitive executes on the calling thread; the reference
    /// implementation.
    Sequential,
    /// Primitives over vectors longer than the machine's parallel threshold
    /// execute on the rayon thread pool. Results are bit-identical to the
    /// sequential backend.
    #[default]
    Parallel,
}

/// Monotonic counters of primitive operations issued through a [`Machine`].
#[derive(Debug, Default)]
pub struct OpStats {
    scans: AtomicU64,
    elementwise: AtomicU64,
    permutes: AtomicU64,
    sorts: AtomicU64,
    rounds: AtomicU64,
    scan_passes: AtomicU64,
    fused_lanes_saved: AtomicU64,
    allocs_avoided: AtomicU64,
    blocked_passes: AtomicU64,
    bytes_moved: AtomicU64,
    inplace_reuses: AtomicU64,
}

/// A point-in-time copy of [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Segmented or unsegmented scan operations (a fused K-lane scan counts
    /// as K — the paper-level operation count is unchanged by fusion).
    pub scans: u64,
    /// Elementwise (map / zip-map) operations.
    pub elementwise: u64,
    /// Permutation / gather operations.
    pub permutes: u64,
    /// Segmented sort operations (each counts once, regardless of length).
    pub sorts: u64,
    /// Algorithm-level iteration rounds recorded via [`Machine::bump_rounds`].
    pub rounds: u64,
    /// Physical passes over the segment structure: one per unfused scan,
    /// one per [`Machine::scan_lanes`] call regardless of lane count. This
    /// is the quantity fusion lowers (`scan_passes <= scans` always).
    pub scan_passes: u64,
    /// Extra passes avoided by fusion: a K-lane fused scan adds `K - 1`.
    /// Invariant: `scans == scan_passes + fused_lanes_saved`.
    pub fused_lanes_saved: u64,
    /// `_into`-variant calls served by a buffer whose capacity already
    /// covered the output (no heap allocation took place).
    pub allocs_avoided: u64,
    /// Scan passes executed by the cache-blocked kernels
    /// ([`crate::blocked`]). Backend-dependent by construction: the
    /// sequential reference never blocks, so this stays zero there.
    pub blocked_passes: u64,
    /// Output bytes the machine's primitives wrote (scans, maps,
    /// permutes, gathers, in-place applies) — the memory-traffic side of
    /// the op counts. Counted pre-dispatch from vector lengths, so
    /// sequential and parallel machines running the same algorithm
    /// report the same value.
    pub bytes_moved: u64,
    /// In-place / ping-pong primitive applications that reused the input
    /// buffer (or a single leased slab) instead of allocating a fresh
    /// output vector.
    pub inplace_reuses: u64,
}

impl StatsSnapshot {
    /// Total primitive operations (excluding `rounds`, which is a
    /// higher-level marker, not a machine primitive).
    pub fn total_primitives(&self) -> u64 {
        self.scans + self.elementwise + self.permutes + self.sorts
    }

    /// Lane-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            scans: self.scans - earlier.scans,
            elementwise: self.elementwise - earlier.elementwise,
            permutes: self.permutes - earlier.permutes,
            sorts: self.sorts - earlier.sorts,
            rounds: self.rounds - earlier.rounds,
            scan_passes: self.scan_passes - earlier.scan_passes,
            fused_lanes_saved: self.fused_lanes_saved - earlier.fused_lanes_saved,
            allocs_avoided: self.allocs_avoided - earlier.allocs_avoided,
            blocked_passes: self.blocked_passes - earlier.blocked_passes,
            bytes_moved: self.bytes_moved - earlier.bytes_moved,
            inplace_reuses: self.inplace_reuses - earlier.inplace_reuses,
        }
    }
}

/// Exact-fit reservation for a reused output buffer: clear it and, if its
/// capacity falls short of `n`, reserve to exactly `n` slots. The
/// `*_into` primitives call this before filling so a recycled arena
/// buffer is never grown by `Vec`'s amortized doubling — without it a
/// buffer serving `n` lanes can stay pinned at up to `2n` capacity,
/// which showed up as tens of megabytes of overhang on the bucket-PMR
/// build's arena peak.
pub(crate) fn fit_exact<T>(out: &mut Vec<T>, n: usize) {
    out.clear();
    if out.capacity() < n {
        out.reserve_exact(n);
    }
}

/// Structured telemetry for one step of a round-driven build loop.
///
/// Recorded by the `RoundDriver` in `dp-core` via
/// [`Machine::record_round_trace`]: each step captures the frontier shape
/// before the step, how many nodes split, the *delta* of the machine's
/// physical counters across the step, the arena high-water mark, and wall
/// time. Consumers (the service's per-shard build logs, `bench_scanmodel
/// --trace`) read the buffer back with [`Machine::round_traces`] /
/// [`Machine::take_round_traces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTrace {
    /// Driver step index within one build (for the quadtree builders one
    /// step is one subdivision round; for the R-tree one step is one
    /// height-level pass of the bottom-up overflow sweep).
    pub round: usize,
    /// Active (segment, node)-pair elements entering the step.
    pub active_elements: usize,
    /// Active frontier nodes entering the step.
    pub active_nodes: usize,
    /// Nodes the policy decided to split this step.
    pub nodes_split: usize,
    /// Paper-level scan operations issued during the step.
    pub scans: u64,
    /// Physical scan passes issued during the step (`<= scans` with
    /// fusion).
    pub scan_passes: u64,
    /// Elementwise operations issued during the step.
    pub elementwise: u64,
    /// Permutation / gather operations issued during the step.
    pub permutes: u64,
    /// Arena high-water mark (peak retained + leased bytes) after the
    /// step.
    pub arena_high_water_bytes: usize,
    /// Wall time of the step in nanoseconds.
    pub wall_nanos: u64,
    /// Cache-blocked scan passes issued during the step (zero on the
    /// sequential backend).
    pub blocked_passes: u64,
    /// Output bytes written by primitives during the step.
    pub bytes_moved: u64,
    /// In-place / ping-pong primitive applications during the step.
    pub inplace_reuses: u64,
    /// The machine's block byte budget (constant per machine; see
    /// [`crate::blocked::tuned_block_bytes`]), logged so a trace records
    /// which block size produced it.
    pub block_bytes: usize,
}

/// Upper bound on buffered [`RoundTrace`] records per machine; steps past
/// the cap are silently dropped (builds are O(log n) rounds, so the cap is
/// only a runaway backstop).
pub const MAX_ROUND_TRACES: usize = 4096;

/// The software vector machine. Cheap to share by reference; counter state
/// is interior-mutable atomics, the scratch arena and round-trace buffer
/// sit behind their own locks.
#[derive(Debug)]
pub struct Machine {
    backend: Backend,
    par_threshold: usize,
    /// Worker-pool width, read once at construction so `block_len` does
    /// not re-query it on every parallel primitive.
    threads: usize,
    /// Block byte budget for the cache-blocked kernels: the process-wide
    /// tuned value ([`crate::blocked::tuned_block_bytes`]) unless
    /// overridden via [`Machine::with_block_bytes`].
    block_bytes: usize,
    stats: OpStats,
    scratch: Mutex<ScratchArena>,
    traces: Mutex<Vec<RoundTrace>>,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new(Backend::default())
    }
}

impl Machine {
    /// A machine with the given backend and the default parallel threshold.
    pub fn new(backend: Backend) -> Self {
        Machine {
            backend,
            par_threshold: PAR_THRESHOLD,
            threads: rayon::current_num_threads().max(1),
            block_bytes: blocked::tuned_block_bytes(),
            stats: OpStats::default(),
            scratch: Mutex::new(ScratchArena::new()),
            traces: Mutex::new(Vec::new()),
            fault_plan: None,
        }
    }

    /// A sequential reference machine.
    pub fn sequential() -> Self {
        Machine::new(Backend::Sequential)
    }

    /// A parallel machine using the global rayon pool.
    pub fn parallel() -> Self {
        Machine::new(Backend::Parallel)
    }

    /// Overrides the minimum vector length at which the parallel backend
    /// engages (useful to force parallel paths in tests).
    pub fn with_par_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = threshold;
        self
    }

    /// Overrides the cache-block byte budget (useful to force tiny
    /// blocks in tests). Defaults to the process-wide tuned value; see
    /// [`crate::blocked::tuned_block_bytes`] and the `DP_BLOCK` env var.
    pub fn with_block_bytes(mut self, block_bytes: usize) -> Self {
        self.block_bytes = block_bytes.max(1);
        self
    }

    /// The machine's cache-block byte budget.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Attaches a [`FaultPlan`] consulted at the machine's fault sites
    /// (arena pressure at round boundaries via [`Machine::bump_rounds`],
    /// plus any site checked through [`Machine::check_fault`]). Machines
    /// without a plan skip all checks.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub(crate) fn use_par(&self, n: usize) -> bool {
        self.backend == Backend::Parallel && n >= self.par_threshold
    }

    /// Cached worker-pool width (see the `threads` field).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            scans: self.stats.scans.load(Ordering::Relaxed),
            elementwise: self.stats.elementwise.load(Ordering::Relaxed),
            permutes: self.stats.permutes.load(Ordering::Relaxed),
            sorts: self.stats.sorts.load(Ordering::Relaxed),
            rounds: self.stats.rounds.load(Ordering::Relaxed),
            scan_passes: self.stats.scan_passes.load(Ordering::Relaxed),
            fused_lanes_saved: self.stats.fused_lanes_saved.load(Ordering::Relaxed),
            allocs_avoided: self.stats.allocs_avoided.load(Ordering::Relaxed),
            blocked_passes: self.stats.blocked_passes.load(Ordering::Relaxed),
            bytes_moved: self.stats.bytes_moved.load(Ordering::Relaxed),
            inplace_reuses: self.stats.inplace_reuses.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero and clears the round-trace buffer.
    pub fn reset_stats(&self) {
        self.stats.scans.store(0, Ordering::Relaxed);
        self.stats.elementwise.store(0, Ordering::Relaxed);
        self.stats.permutes.store(0, Ordering::Relaxed);
        self.stats.sorts.store(0, Ordering::Relaxed);
        self.stats.rounds.store(0, Ordering::Relaxed);
        self.stats.scan_passes.store(0, Ordering::Relaxed);
        self.stats.fused_lanes_saved.store(0, Ordering::Relaxed);
        self.stats.allocs_avoided.store(0, Ordering::Relaxed);
        self.stats.blocked_passes.store(0, Ordering::Relaxed);
        self.stats.bytes_moved.store(0, Ordering::Relaxed);
        self.stats.inplace_reuses.store(0, Ordering::Relaxed);
        self.traces.lock().expect("machine traces poisoned").clear();
    }

    // ------------------------------------------------------------------
    // Round traces
    // ------------------------------------------------------------------

    /// Appends one [`RoundTrace`] record (drops it silently once
    /// [`MAX_ROUND_TRACES`] records are buffered). Purely observational:
    /// no operation counter changes.
    pub fn record_round_trace(&self, trace: RoundTrace) {
        let mut traces = self.traces.lock().expect("machine traces poisoned");
        if traces.len() < MAX_ROUND_TRACES {
            traces.push(trace);
        }
    }

    /// A copy of the buffered round traces.
    pub fn round_traces(&self) -> Vec<RoundTrace> {
        self.traces.lock().expect("machine traces poisoned").clone()
    }

    /// Drains and returns the buffered round traces.
    pub fn take_round_traces(&self) -> Vec<RoundTrace> {
        std::mem::take(&mut *self.traces.lock().expect("machine traces poisoned"))
    }

    // ------------------------------------------------------------------
    // Scratch arena
    // ------------------------------------------------------------------

    /// Leases an empty scratch `Vec<T>` from the machine's arena, reusing
    /// pooled capacity when available. Pair with [`Machine::recycle`].
    pub fn lease<T: Send + 'static>(&self) -> Vec<T> {
        self.scratch.lock().expect("machine arena poisoned").take()
    }

    /// Returns a scratch buffer to the arena for later reuse.
    pub fn recycle<T: Send + 'static>(&self, buf: Vec<T>) {
        self.scratch
            .lock()
            .expect("machine arena poisoned")
            .put(buf);
    }

    /// `(takes, reuse hits)` of the machine's scratch arena.
    pub fn arena_stats(&self) -> (u64, u64) {
        self.scratch
            .lock()
            .expect("machine arena poisoned")
            .reuse_stats()
    }

    /// Lifetime peak of bytes retained by the machine's scratch arena.
    pub fn arena_high_water_bytes(&self) -> usize {
        self.scratch
            .lock()
            .expect("machine arena poisoned")
            .high_water_bytes()
    }

    /// Bytes currently retained (pooled) by the machine's scratch arena.
    pub fn arena_retained_bytes(&self) -> usize {
        self.scratch
            .lock()
            .expect("machine arena poisoned")
            .retained_bytes()
    }

    /// Records that an `_into` primitive reused a warm buffer. Counted
    /// centrally from the output buffer's pre-call capacity, *before*
    /// backend dispatch, so sequential and parallel machines running the
    /// same algorithm report identical snapshots.
    pub(crate) fn note_alloc_avoided(&self, capacity: usize, needed: usize) {
        if needed > 0 && capacity >= needed {
            self.stats.allocs_avoided.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one algorithm-level round (a subdivision stage in the build
    /// algorithms of paper Section 5) and runs the scratch arena's
    /// end-of-round decay (see [`ScratchArena::decay`]), so a pathological
    /// round's peak buffers are released within a few subsequent rounds.
    pub fn bump_rounds(&self) {
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        let mut scratch = self.scratch.lock().expect("machine arena poisoned");
        // The arena-overflow fault site lives at the round boundary: the
        // plan can clamp the arena to its minimum cap and evict everything,
        // simulating a pathological round's memory pressure. Recoverable by
        // construction — subsequent leases just re-allocate.
        if let Some(plan) = &self.fault_plan {
            if plan.should_fire(FaultSite::ArenaOverflow).is_some() {
                scratch.inject_pressure();
            }
        }
        scratch.decay();
    }

    /// Records one elementwise operation performed by composite-algorithm
    /// code outside the machine's own `map`/`zip_map` (e.g. a fused
    /// multi-input classification pass). Keeps the op accounting honest
    /// when an algorithm implements a paper-level elementwise step as a
    /// plain loop over more than two vectors.
    pub fn note_elementwise(&self) {
        self.count_elementwise();
    }

    /// Records one scan operation performed outside the machine (see
    /// [`Machine::note_elementwise`]).
    pub fn note_scan(&self) {
        self.count_scan();
    }

    /// Records one permutation performed outside the machine (see
    /// [`Machine::note_elementwise`]).
    pub fn note_permute(&self) {
        self.count_permute();
    }

    pub(crate) fn count_scan(&self) {
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
        self.stats.scan_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// A K-lane fused scan is K paper-level scans in one physical pass.
    fn count_fused_scan(&self, lanes: u64) {
        self.stats.scans.fetch_add(lanes, Ordering::Relaxed);
        self.stats.scan_passes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .fused_lanes_saved
            .fetch_add(lanes.saturating_sub(1), Ordering::Relaxed);
    }

    pub(crate) fn count_elementwise(&self) {
        self.stats.elementwise.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_permute(&self) {
        self.stats.permutes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_sort(&self) {
        self.stats.sorts.fetch_add(1, Ordering::Relaxed);
    }

    /// One pass executed by a cache-blocked kernel.
    pub(crate) fn count_blocked_pass(&self) {
        self.stats.blocked_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Output bytes a primitive wrote, counted pre-dispatch so both
    /// backends report the same value for the same algorithm.
    pub(crate) fn count_bytes_moved(&self, bytes: usize) {
        self.stats
            .bytes_moved
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// One primitive application that wrote through its input buffer (or
    /// a single ping-pong slab) instead of a fresh output vector.
    pub(crate) fn count_inplace_reuse(&self) {
        self.stats.inplace_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// The block size, in elements of `T`, the blocked kernels use on
    /// this machine.
    pub(crate) fn block_elems<T>(&self) -> usize {
        blocked::block_elems::<T>(self.block_bytes)
    }

    // ------------------------------------------------------------------
    // Scan primitives (paper Sec. 3.2.1)
    // ------------------------------------------------------------------

    /// Segmented scan in either direction.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != seg.len()`.
    pub fn scan<T, O>(
        &self,
        data: &[T],
        seg: &Segments,
        op: O,
        dir: Direction,
        kind: ScanKind,
    ) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        let mut out = Vec::new();
        self.scan_into(data, seg, op, dir, kind, &mut out);
        out
    }

    /// Segmented scan into a caller-provided buffer (cleared first). Lease
    /// the buffer from [`Machine::lease`] and the steady-state call is
    /// allocation-free; bit-identical to [`Machine::scan`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != seg.len()`.
    pub fn scan_into<T, O>(
        &self,
        data: &[T],
        seg: &Segments,
        op: O,
        dir: Direction,
        kind: ScanKind,
        out: &mut Vec<T>,
    ) where
        T: Element,
        O: CombineOp<T>,
    {
        self.count_scan();
        self.note_alloc_avoided(out.capacity(), data.len());
        self.count_bytes_moved(std::mem::size_of_val(data));
        fit_exact(out, data.len());
        if self.use_par(data.len()) {
            self.count_blocked_pass();
            blocked::scan_blocked_into(
                data,
                seg,
                op,
                dir,
                kind,
                self.block_elems::<T>(),
                self.threads,
                out,
            );
        } else {
            scan_seq_into(data, seg, op, dir, kind, out);
        }
    }

    /// Fused multi-lane segmented scan: runs every `(data, op)` lane — all
    /// sharing `seg`, `dir` and `kind` — in a **single pass** over the
    /// segment structure. Counts as `lanes.len()` paper-level scans but
    /// only one physical pass (see [`StatsSnapshot::fused_lanes_saved`]).
    /// Each returned vector is bit-identical to the corresponding
    /// [`Machine::scan`] call.
    ///
    /// # Panics
    ///
    /// Panics if any lane's length differs from `seg.len()`.
    pub fn scan_lanes<T: FusedElement>(
        &self,
        lanes: &[(&[T], FusedOp)],
        seg: &Segments,
        dir: Direction,
        kind: ScanKind,
    ) -> Vec<Vec<T>> {
        let mut outs: Vec<Vec<T>> = (0..lanes.len()).map(|_| Vec::new()).collect();
        self.scan_lanes_into(lanes, seg, dir, kind, &mut outs);
        outs
    }

    /// [`Machine::scan_lanes`] into caller-provided buffers (cleared
    /// first); `outs.len()` must equal `lanes.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != outs.len()` or any lane's length differs
    /// from `seg.len()`.
    pub fn scan_lanes_into<T: FusedElement>(
        &self,
        lanes: &[(&[T], FusedOp)],
        seg: &Segments,
        dir: Direction,
        kind: ScanKind,
        outs: &mut [Vec<T>],
    ) {
        self.count_fused_scan(lanes.len() as u64);
        for out in outs.iter_mut() {
            self.note_alloc_avoided(out.capacity(), seg.len());
            fit_exact(out, seg.len());
        }
        self.count_bytes_moved(lanes.len() * seg.len() * std::mem::size_of::<T>());
        if self.use_par(seg.len()) {
            self.count_blocked_pass();
            blocked::scan_lanes_blocked_into(
                lanes,
                seg,
                dir,
                kind,
                self.block_elems::<T>(),
                self.threads,
                outs,
            );
        } else {
            fused::scan_lanes_seq_into(lanes, seg, dir, kind, outs);
        }
    }

    /// Upward segmented scan (convenience over [`Machine::scan`]).
    pub fn up_scan_seg<T, O>(&self, data: &[T], seg: &Segments, op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(data, seg, op, Direction::Up, kind)
    }

    /// Downward segmented scan (convenience over [`Machine::scan`]).
    pub fn down_scan_seg<T, O>(&self, data: &[T], seg: &Segments, op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(data, seg, op, Direction::Down, kind)
    }

    /// Unsegmented upward scan over the whole vector.
    pub fn up_scan<T, O>(&self, data: &[T], op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(data, &Segments::single(data.len()), op, Direction::Up, kind)
    }

    /// Unsegmented downward scan over the whole vector.
    pub fn down_scan<T, O>(&self, data: &[T], op: O, kind: ScanKind) -> Vec<T>
    where
        T: Element,
        O: CombineOp<T>,
    {
        self.scan(
            data,
            &Segments::single(data.len()),
            op,
            Direction::Down,
            kind,
        )
    }

    // ------------------------------------------------------------------
    // Elementwise primitives (paper Sec. 3.2.2)
    // ------------------------------------------------------------------

    /// Unary elementwise map.
    pub fn map<T, U, F>(&self, data: &[T], f: F) -> Vec<U>
    where
        T: Element,
        U: Element,
        F: Fn(T) -> U + Send + Sync,
    {
        let mut out = Vec::new();
        self.map_into(data, f, &mut out);
        out
    }

    /// Unary elementwise map into a caller-provided buffer (cleared first).
    pub fn map_into<T, U, F>(&self, data: &[T], f: F, out: &mut Vec<U>)
    where
        T: Element,
        U: Element,
        F: Fn(T) -> U + Send + Sync,
    {
        self.count_elementwise();
        self.note_alloc_avoided(out.capacity(), data.len());
        self.count_bytes_moved(data.len() * std::mem::size_of::<U>());
        fit_exact(out, data.len());
        if self.use_par(data.len()) {
            par::map_par_into(data, f, out);
        } else {
            out.clear();
            out.extend(data.iter().map(|&x| f(x)));
        }
    }

    /// Binary elementwise map (paper Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn zip_map<A, B, U, F>(&self, a: &[A], b: &[B], f: F) -> Vec<U>
    where
        A: Element,
        B: Element,
        U: Element,
        F: Fn(A, B) -> U + Send + Sync,
    {
        let mut out = Vec::new();
        self.zip_map_into(a, b, f, &mut out);
        out
    }

    /// Binary elementwise map into a caller-provided buffer (cleared
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn zip_map_into<A, B, U, F>(&self, a: &[A], b: &[B], f: F, out: &mut Vec<U>)
    where
        A: Element,
        B: Element,
        U: Element,
        F: Fn(A, B) -> U + Send + Sync,
    {
        self.count_elementwise();
        self.note_alloc_avoided(out.capacity(), a.len());
        self.count_bytes_moved(a.len() * std::mem::size_of::<U>());
        fit_exact(out, a.len());
        if self.use_par(a.len()) {
            par::zip_map_par_into(a, b, f, out);
        } else {
            assert_eq!(
                a.len(),
                b.len(),
                "elementwise: vector lengths {} and {} differ",
                a.len(),
                b.len()
            );
            out.clear();
            out.extend(a.iter().zip(b.iter()).map(|(&x, &y)| f(x, y)));
        }
    }

    /// Unary elementwise map **in place**: every lane is overwritten with
    /// `f(lane)`, with no output buffer. On the parallel backend the sweep
    /// runs over disjoint cache-sized blocks. Counts as one elementwise
    /// op plus one in-place reuse.
    pub fn map_in_place<T, F>(&self, data: &mut [T], f: F)
    where
        T: Element,
        F: Fn(T) -> T + Send + Sync,
    {
        self.count_elementwise();
        self.count_bytes_moved(std::mem::size_of_val(data));
        self.count_inplace_reuse();
        if self.use_par(data.len()) {
            let base = crate::scatter::SyncPtr(data.as_mut_ptr());
            rayon::for_each_block(data.len(), self.block_elems::<T>(), |lo, hi| {
                for i in lo..hi {
                    // SAFETY: blocks are disjoint, so each lane is read and
                    // rewritten by exactly one worker.
                    unsafe {
                        let p = base.get().add(i);
                        p.write(f(p.read()));
                    }
                }
            });
        } else {
            for x in data.iter_mut() {
                *x = f(*x);
            }
        }
    }

    /// Binary elementwise map **in place**: lane `i` of `data` becomes
    /// `f(data[i], other[i])` — the in-place form of
    /// [`Machine::zip_map_into`] for steps that fold a second vector into
    /// an existing one. Counts as one elementwise op plus one in-place
    /// reuse.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn zip_map_in_place<T, B, F>(&self, data: &mut [T], other: &[B], f: F)
    where
        T: Element,
        B: Element,
        F: Fn(T, B) -> T + Send + Sync,
    {
        assert_eq!(
            data.len(),
            other.len(),
            "elementwise: vector lengths {} and {} differ",
            data.len(),
            other.len()
        );
        self.count_elementwise();
        self.count_bytes_moved(std::mem::size_of_val(data));
        self.count_inplace_reuse();
        if self.use_par(data.len()) {
            let base = crate::scatter::SyncPtr(data.as_mut_ptr());
            rayon::for_each_block(data.len(), self.block_elems::<T>(), |lo, hi| {
                for (k, &y) in other[lo..hi].iter().enumerate() {
                    // SAFETY: blocks are disjoint, so each lane is read and
                    // rewritten by exactly one worker.
                    unsafe {
                        let p = base.get().add(lo + k);
                        p.write(f(p.read(), y));
                    }
                }
            });
        } else {
            for (x, &y) in data.iter_mut().zip(other.iter()) {
                *x = f(*x, y);
            }
        }
    }

    /// Fused multi-lane elementwise fill: evaluates `f(i)` once per index
    /// and writes its K results into K caller-provided buffers (cleared
    /// first) in a single pass — the elementwise analogue of
    /// [`Machine::scan_lanes_into`], for steps that derive several scan
    /// input lanes from one shared computation (e.g. the PM₁ decision's
    /// endpoint count plus four bounding-box extents). Counts as one
    /// elementwise operation.
    pub fn fill_lanes_into<T, F, const K: usize>(&self, n: usize, f: F, outs: &mut [Vec<T>; K])
    where
        T: Element + Default,
        F: Fn(usize) -> [T; K] + Sync,
    {
        self.count_elementwise();
        for out in outs.iter() {
            self.note_alloc_avoided(out.capacity(), n);
        }
        self.count_bytes_moved(K * n * std::mem::size_of::<T>());
        for out in outs.iter_mut() {
            fit_exact(out, n);
        }
        if self.use_par(n) {
            par::fill_lanes_par_into(n, &f, self.threads, outs);
        } else {
            for i in 0..n {
                let vals = f(i);
                for (out, v) in outs.iter_mut().zip(vals) {
                    out.push(v);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Permutation primitives (paper Sec. 3.2.3)
    // ------------------------------------------------------------------

    /// Scatter permutation: `out[index[i]] = data[i]` with `index` a
    /// bijection on `0..n` (paper Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `index` is not one-to-one.
    pub fn permute<T: Element>(&self, data: &[T], index: &[usize]) -> Vec<T> {
        let mut out = Vec::new();
        self.permute_into(data, index, &mut out);
        out
    }

    /// Scatter permutation into a caller-provided buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `index` is not one-to-one.
    pub fn permute_into<T: Element>(&self, data: &[T], index: &[usize], out: &mut Vec<T>) {
        self.count_permute();
        self.note_alloc_avoided(out.capacity(), data.len());
        self.count_bytes_moved(std::mem::size_of_val(data));
        fit_exact(out, data.len());
        if self.use_par(data.len()) {
            permute_par_into(data, index, out);
        } else {
            permute_seq_into(data, index, out);
        }
    }

    /// Gather: `out[j] = data[order[j]]`. The inverse view of a
    /// permutation; counted as a permutation op.
    ///
    /// # Panics
    ///
    /// Panics if any order entry is out of bounds.
    pub fn gather<T: Element>(&self, data: &[T], order: &[usize]) -> Vec<T> {
        let mut out = Vec::new();
        self.gather_into(data, order, &mut out);
        out
    }

    /// Gather into a caller-provided buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if any order entry is out of bounds.
    pub fn gather_into<T: Element>(&self, data: &[T], order: &[usize], out: &mut Vec<T>) {
        self.count_permute();
        self.note_alloc_avoided(out.capacity(), order.len());
        self.count_bytes_moved(order.len() * std::mem::size_of::<T>());
        fit_exact(out, order.len());
        if self.use_par(order.len()) {
            order.par_iter().map(|&i| data[i]).collect_into_vec(out);
        } else {
            out.clear();
            out.extend(order.iter().map(|&i| data[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Sum;

    #[test]
    fn stats_count_operations() {
        let m = Machine::sequential();
        let data = vec![1i64, 2, 3, 4];
        let seg = Segments::single(4);
        let _ = m.up_scan_seg(&data, &seg, Sum, ScanKind::Inclusive);
        let _ = m.map(&data, |x| x + 1);
        let _ = m.zip_map(&data, &data, |a, b| a + b);
        let _ = m.permute(&data, &[3, 2, 1, 0]);
        let _ = m.gather(&data, &[0, 0, 1]);
        m.bump_rounds();
        let s = m.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.elementwise, 2);
        assert_eq!(s.permutes, 2);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.total_primitives(), 5);
        m.reset_stats();
        assert_eq!(m.stats(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let m = Machine::sequential();
        let data = vec![1i64, 2];
        let _ = m.up_scan(&data, Sum, ScanKind::Inclusive);
        let before = m.stats();
        let _ = m.up_scan(&data, Sum, ScanKind::Inclusive);
        let _ = m.up_scan(&data, Sum, ScanKind::Inclusive);
        let delta = m.stats().since(&before);
        assert_eq!(delta.scans, 2);
    }

    #[test]
    fn backends_agree_below_and_above_threshold() {
        let seq = Machine::sequential();
        let par = Machine::parallel().with_par_threshold(1);
        let n = 10_000usize;
        let data: Vec<i64> = (0..n as i64).map(|i| i % 11 - 5).collect();
        let seg = Segments::from_lengths(&[n / 2, n / 2]).unwrap();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            for dir in [Direction::Up, Direction::Down] {
                assert_eq!(
                    seq.scan(&data, &seg, Sum, dir, kind),
                    par.scan(&data, &seg, Sum, dir, kind)
                );
            }
        }
        let idx: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        assert_eq!(seq.permute(&data, &idx), par.permute(&data, &idx));
        assert_eq!(
            seq.zip_map(&data, &data, |a, b| a * b),
            par.zip_map(&data, &data, |a, b| a * b)
        );
    }

    #[test]
    fn gather_basic() {
        let m = Machine::sequential();
        let data = vec![10u32, 20, 30];
        assert_eq!(m.gather(&data, &[2, 0, 2]), vec![30, 10, 30]);
    }
}
