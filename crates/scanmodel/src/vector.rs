//! Segment descriptors for segmented vector operations.
//!
//! In the scan model (paper Section 3.2.1), a *segmented* vector is an
//! ordinary vector accompanied by a vector of *segment flags*: a flag value
//! of `true` marks the first lane of a segment. A segmented scan behaves as
//! multiple independent scans, one per contiguous segment (paper Fig. 8).
//!
//! [`Segments`] stores both the flag representation (which the primitive
//! operations consume directly, exactly as on the CM-5) and a derived list
//! of segment start offsets (which the parallel backend and per-segment
//! iteration use).

use crate::error::ScanModelError;
use std::ops::Range;

/// A validated segment descriptor over a vector of length `len`.
///
/// Invariants (enforced by all constructors):
/// * if `len > 0`, lane 0 is a segment start;
/// * every segment is non-empty (this follows from the flag representation:
///   a segment extends to the lane before the next flag);
/// * `starts` is strictly increasing and `starts[0] == 0`.
///
/// An empty descriptor (`len == 0`) has zero segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    flags: Vec<bool>,
    starts: Vec<usize>,
}

impl Segments {
    /// Builds a descriptor from a segment-flag vector (paper Fig. 8 `sf`).
    ///
    /// # Errors
    ///
    /// Returns [`ScanModelError::InvalidSegments`] if the vector is
    /// non-empty but its first flag is not set (the first lane must begin a
    /// segment).
    pub fn from_flags(flags: Vec<bool>) -> Result<Self, ScanModelError> {
        if !flags.is_empty() && !flags[0] {
            return Err(ScanModelError::InvalidSegments {
                reason: "first lane of a non-empty vector must start a segment".into(),
            });
        }
        let starts = flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect();
        Ok(Segments { flags, starts })
    }

    /// Builds a descriptor from per-segment lengths.
    ///
    /// # Errors
    ///
    /// Returns [`ScanModelError::InvalidSegments`] if any length is zero;
    /// the flag representation cannot express empty segments.
    pub fn from_lengths(lengths: &[usize]) -> Result<Self, ScanModelError> {
        if let Some(pos) = lengths.iter().position(|&l| l == 0) {
            return Err(ScanModelError::InvalidSegments {
                reason: format!("segment {pos} has zero length"),
            });
        }
        let total: usize = lengths.iter().sum();
        let mut flags = vec![false; total];
        let mut starts = Vec::with_capacity(lengths.len());
        let mut at = 0usize;
        for &l in lengths {
            flags[at] = true;
            starts.push(at);
            at += l;
        }
        Ok(Segments { flags, starts })
    }

    /// A descriptor with a single segment covering `len` lanes (or zero
    /// segments when `len == 0`).
    pub fn single(len: usize) -> Self {
        if len == 0 {
            return Segments {
                flags: Vec::new(),
                starts: Vec::new(),
            };
        }
        let mut flags = vec![false; len];
        flags[0] = true;
        Segments {
            flags,
            starts: vec![0],
        }
    }

    /// Total number of lanes covered by the descriptor.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` when the descriptor covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    /// The raw segment-flag vector (`sf` in paper Fig. 8).
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Segment start offsets, strictly increasing, first element 0.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Length of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.num_segments()`.
    pub fn segment_len(&self, s: usize) -> usize {
        self.range(s).len()
    }

    /// Lane range of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.num_segments()`.
    pub fn range(&self, s: usize) -> Range<usize> {
        let start = self.starts[s];
        let end = self.starts.get(s + 1).copied().unwrap_or(self.flags.len());
        start..end
    }

    /// Iterator over the lane ranges of all segments, in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_segments()).map(|s| self.range(s))
    }

    /// Per-segment lengths, in order.
    pub fn lengths(&self) -> Vec<usize> {
        self.ranges().map(|r| r.len()).collect()
    }

    /// Index of the segment containing lane `i` (binary search over starts).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn segment_of(&self, i: usize) -> usize {
        assert!(
            i < self.len(),
            "lane {i} out of bounds (len {})",
            self.len()
        );
        match self.starts.binary_search(&i) {
            Ok(s) => s,
            Err(ins) => ins - 1,
        }
    }

    /// Per-lane segment ids, i.e. `segment_of` materialized for all lanes.
    pub fn segment_ids(&self) -> Vec<usize> {
        let mut ids = vec![0usize; self.len()];
        for (s, r) in self.ranges().enumerate() {
            for id in &mut ids[r] {
                *id = s;
            }
        }
        ids
    }

    /// `true` when lane `i` is the last lane of its segment.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn is_segment_end(&self, i: usize) -> bool {
        assert!(
            i < self.len(),
            "lane {i} out of bounds (len {})",
            self.len()
        );
        i + 1 == self.len() || self.flags[i + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flags_matches_paper_fig8() {
        // Fig. 8: segment flags 1 0 0 | 1 0 0 0 | 1 0 | 1 0 0.
        let flags = vec![
            true, false, false, true, false, false, false, true, false, true, false, false,
        ];
        let seg = Segments::from_flags(flags).unwrap();
        assert_eq!(seg.num_segments(), 4);
        assert_eq!(seg.lengths(), vec![3, 4, 2, 3]);
        assert_eq!(seg.starts(), &[0, 3, 7, 9]);
    }

    #[test]
    fn from_lengths_roundtrips_flags() {
        let seg = Segments::from_lengths(&[3, 4, 2, 3]).unwrap();
        let via_flags = Segments::from_flags(seg.flags().to_vec()).unwrap();
        assert_eq!(seg, via_flags);
    }

    #[test]
    fn from_flags_rejects_headless_vector() {
        let err = Segments::from_flags(vec![false, true]).unwrap_err();
        assert!(matches!(err, ScanModelError::InvalidSegments { .. }));
    }

    #[test]
    fn from_lengths_rejects_empty_segment() {
        let err = Segments::from_lengths(&[2, 0, 1]).unwrap_err();
        assert!(matches!(err, ScanModelError::InvalidSegments { .. }));
    }

    #[test]
    fn empty_descriptor() {
        let seg = Segments::from_flags(Vec::new()).unwrap();
        assert!(seg.is_empty());
        assert_eq!(seg.num_segments(), 0);
        assert_eq!(seg.lengths(), Vec::<usize>::new());
        let single = Segments::single(0);
        assert_eq!(seg, single);
    }

    #[test]
    fn single_segment() {
        let seg = Segments::single(5);
        assert_eq!(seg.num_segments(), 1);
        assert_eq!(seg.range(0), 0..5);
        assert!(seg.is_segment_end(4));
        assert!(!seg.is_segment_end(3));
    }

    #[test]
    fn segment_of_lookup() {
        let seg = Segments::from_lengths(&[3, 4, 2, 3]).unwrap();
        let expect = [0, 0, 0, 1, 1, 1, 1, 2, 2, 3, 3, 3];
        for (i, &want) in expect.iter().enumerate() {
            assert_eq!(seg.segment_of(i), want, "lane {i}");
        }
        assert_eq!(seg.segment_ids(), expect.to_vec());
    }

    #[test]
    fn segment_end_detection() {
        let seg = Segments::from_lengths(&[2, 1, 3]).unwrap();
        let ends: Vec<bool> = (0..seg.len()).map(|i| seg.is_segment_end(i)).collect();
        assert_eq!(ends, vec![false, true, true, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn segment_of_out_of_bounds_panics() {
        let seg = Segments::from_lengths(&[2]).unwrap();
        seg.segment_of(2);
    }
}
