//! Differential tests for the cache-blocked kernel path: a parallel
//! machine forced down the blocked dispatch (`with_par_threshold(1)`)
//! with a deliberately tiny block size must be bit-identical to the
//! unblocked sequential reference on every primitive, at every block
//! boundary shape.
//!
//! The boundary shapes named by the acceptance criteria are all here:
//! empty input, exactly one block, one element either side of a block
//! boundary, and lengths that are not a multiple of the block. With
//! `i64` lanes and `with_block_bytes(512)` a block is exactly
//! `MIN_BLOCK_ELEMS` = 64 elements, so n = 63 / 64 / 65 / 128 / 129
//! straddle the first two boundaries and n = 1000 ends mid-block.
//!
//! The proptest section honours `PROPTEST_CASES` (CI pins it to 64)
//! through `ProptestConfig::default()`, like the rest of the suite.

use proptest::prelude::*;
use scan_model::blocked::MIN_BLOCK_ELEMS;
use scan_model::ops::{Max, Min, Sum};
use scan_model::{Direction, Machine, ScanKind, Segments};

/// One block = 64 `i64` lanes: small enough that every fixture size
/// below exercises multi-block sweeps, carries, and the tail block.
const TINY_BLOCK_BYTES: usize = MIN_BLOCK_ELEMS * std::mem::size_of::<i64>();

/// Sizes straddling the block boundaries for a 64-element block, plus
/// the degenerate shapes.
const BOUNDARY_SIZES: &[usize] = &[0, 1, 63, 64, 65, 127, 128, 129, 1000];

/// The unblocked reference and the blocked machine under test.
fn machines() -> (Machine, Machine) {
    (
        Machine::sequential(),
        Machine::parallel()
            .with_par_threshold(1)
            .with_block_bytes(TINY_BLOCK_BYTES),
    )
}

/// Deterministic pseudo-random lane values.
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A segmented fixture of exactly `n` lanes whose segment lengths are
/// themselves pseudo-random (1..=37), so segment breaks land on both
/// sides of block boundaries.
fn fixture(n: usize, seed: u64) -> (Vec<i64>, Segments) {
    let mut s = seed;
    let data: Vec<i64> = (0..n).map(|_| lcg(&mut s) as i64 % 1000 - 500).collect();
    let mut lens = Vec::new();
    let mut total = 0usize;
    while total < n {
        let l = (lcg(&mut s) as usize % 37 + 1).min(n - total);
        lens.push(l);
        total += l;
    }
    let seg = Segments::from_lengths(&lens).expect("fixture lengths are positive and sum to n");
    (data, seg)
}

#[test]
fn blocked_scans_match_unblocked_at_every_boundary() {
    let (seq, par) = machines();
    for &n in BOUNDARY_SIZES {
        let (data, seg) = fixture(n, 0xB10C + n as u64);
        for dir in [Direction::Up, Direction::Down] {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                assert_eq!(
                    seq.scan(&data, &seg, Sum, dir, kind),
                    par.scan(&data, &seg, Sum, dir, kind),
                    "sum scan diverged at n={n} {dir:?} {kind:?}"
                );
                assert_eq!(
                    seq.scan(&data, &seg, Max, dir, kind),
                    par.scan(&data, &seg, Max, dir, kind),
                    "max scan diverged at n={n} {dir:?} {kind:?}"
                );
                assert_eq!(
                    seq.scan(&data, &seg, Min, dir, kind),
                    par.scan(&data, &seg, Min, dir, kind),
                    "min scan diverged at n={n} {dir:?} {kind:?}"
                );
            }
        }
    }
}

#[test]
fn blocked_permute_and_gather_match_unblocked_at_every_boundary() {
    let (seq, par) = machines();
    for &n in BOUNDARY_SIZES {
        let (data, _) = fixture(n, 0x9E37 + n as u64);
        // A deterministic bijection: reverse with a rotation.
        let index: Vec<usize> = (0..n).map(|i| (n - 1 - i + n / 3) % n.max(1)).collect();
        assert_eq!(
            seq.permute(&data, &index),
            par.permute(&data, &index),
            "permute diverged at n={n}"
        );
        assert_eq!(
            seq.gather(&data, &index),
            par.gather(&data, &index),
            "gather diverged at n={n}"
        );
    }
}

#[test]
fn blocked_compaction_layouts_match_unblocked_at_every_boundary() {
    let (seq, par) = machines();
    for &n in BOUNDARY_SIZES {
        let (data, seg) = fixture(n, 0xC0DE + n as u64);
        let mut s = n as u64 + 11;
        let flags: Vec<bool> = (0..n).map(|_| lcg(&mut s) % 3 == 0).collect();

        // Keep-flag pack (delete layout drops where the flag is set).
        let dl_seq = seq.delete_layout(&seg, &flags);
        let dl_par = par.delete_layout(&seg, &flags);
        assert_eq!(
            seq.apply_delete(&data, &dl_seq),
            par.apply_delete(&data, &dl_par),
            "delete pack diverged at n={n}"
        );
        let mut in_place = data.clone();
        par.apply_delete_in_place(&mut in_place, &dl_par);
        assert_eq!(
            in_place,
            seq.apply_delete(&data, &dl_seq),
            "in-place delete diverged at n={n}"
        );

        // Two-way unshuffle (stable partition by class).
        let ul_seq = seq.unshuffle_layout(&seg, &flags);
        let ul_par = par.unshuffle_layout(&seg, &flags);
        assert_eq!(
            seq.apply_unshuffle(&data, &ul_seq),
            par.apply_unshuffle(&data, &ul_par),
            "unshuffle diverged at n={n}"
        );
        let mut swapped = data.clone();
        par.apply_unshuffle_swap(&mut swapped, &ul_par);
        assert_eq!(
            swapped,
            seq.apply_unshuffle(&data, &ul_seq),
            "unshuffle swap diverged at n={n}"
        );

        // Clone expansion (adjacent copies where flagged).
        let cl_seq = seq.clone_layout(&seg, &flags);
        let cl_par = par.clone_layout(&seg, &flags);
        assert_eq!(
            seq.apply_clone(&data, &cl_seq),
            par.apply_clone(&data, &cl_par),
            "clone diverged at n={n}"
        );
        let mut cloned = data.clone();
        par.apply_clone_in_place(&mut cloned, &cl_par);
        assert_eq!(
            cloned,
            seq.apply_clone(&data, &cl_seq),
            "in-place clone diverged at n={n}"
        );
    }
}

#[test]
fn blocked_elementwise_in_place_matches_map_at_every_boundary() {
    let (seq, par) = machines();
    for &n in BOUNDARY_SIZES {
        let (data, _) = fixture(n, 0xE1E + n as u64);
        let other: Vec<i64> = data.iter().map(|&x| x ^ 0x55).collect();
        let expect = seq.map(&data, |x| x.wrapping_mul(3) - 7);
        let mut got = data.clone();
        par.map_in_place(&mut got, |x| x.wrapping_mul(3) - 7);
        assert_eq!(got, expect, "map_in_place diverged at n={n}");

        let expect = seq.zip_map(&data, &other, |x, y| x.wrapping_add(y));
        let mut got = data.clone();
        par.zip_map_in_place(&mut got, &other, |x, y| x.wrapping_add(y));
        assert_eq!(got, expect, "zip_map_in_place diverged at n={n}");
    }
}

/// The answer must not depend on the block size: sweep several block
/// sizes (including ones much larger than the input) over one fixture
/// and demand identical scans and packs.
#[test]
fn block_size_invariance() {
    let seq = Machine::sequential();
    let (data, seg) = fixture(1000, 0xB51E);
    let mut s = 23u64;
    let flags: Vec<bool> = (0..data.len()).map(|_| lcg(&mut s) % 3 == 0).collect();
    let reference_scan = seq.scan(&data, &seg, Sum, Direction::Up, ScanKind::Exclusive);
    let reference_pack = {
        let dl = seq.delete_layout(&seg, &flags);
        seq.apply_delete(&data, &dl)
    };
    for block_bytes in [512, 1024, 4096, 1 << 18, 1 << 24] {
        let par = Machine::parallel()
            .with_par_threshold(1)
            .with_block_bytes(block_bytes);
        assert_eq!(
            par.scan(&data, &seg, Sum, Direction::Up, ScanKind::Exclusive),
            reference_scan,
            "scan changed under block_bytes={block_bytes}"
        );
        let dl = par.delete_layout(&seg, &flags);
        assert_eq!(
            par.apply_delete(&data, &dl),
            reference_pack,
            "pack changed under block_bytes={block_bytes}"
        );
    }
}

fn blocked_vec() -> impl Strategy<Value = (Vec<i64>, Vec<usize>)> {
    // Lengths biased to hover around the 64-lane block boundary so the
    // shrunk counterexamples land on carry hand-off bugs.
    (0usize..200, any::<u64>()).prop_map(|(extra, seed)| {
        let n = MIN_BLOCK_ELEMS.saturating_sub(8) + extra;
        let mut s = seed | 1;
        let data: Vec<i64> = (0..n).map(|_| lcg(&mut s) as i64 % 1000 - 500).collect();
        let mut lens = Vec::new();
        let mut total = 0usize;
        while total < n {
            let l = (lcg(&mut s) as usize % 29 + 1).min(n - total);
            lens.push(l);
            total += l;
        }
        (data, lens)
    })
}

proptest! {
    /// Blocked scans are bit-identical to the sequential reference for
    /// arbitrary segment shapes near the block boundary.
    #[test]
    fn blocked_scan_equivalence((data, lens) in blocked_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let (seq, par) = machines();
        for dir in [Direction::Up, Direction::Down] {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                prop_assert_eq!(
                    seq.scan(&data, &seg, Sum, dir, kind),
                    par.scan(&data, &seg, Sum, dir, kind)
                );
            }
        }
    }

    /// Blocked compaction (delete pack + in-place form) is bit-identical
    /// to the reference for arbitrary flags near the block boundary.
    #[test]
    fn blocked_pack_equivalence((data, lens) in blocked_vec(), flag_seed in any::<u64>()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let (seq, par) = machines();
        let mut s = flag_seed | 1;
        let flags: Vec<bool> = (0..data.len()).map(|_| lcg(&mut s) % 2 == 0).collect();
        let expect = seq.apply_delete(&data, &seq.delete_layout(&seg, &flags));
        let dl = par.delete_layout(&seg, &flags);
        prop_assert_eq!(&par.apply_delete(&data, &dl), &expect);
        let mut in_place = data.clone();
        par.apply_delete_in_place(&mut in_place, &dl);
        prop_assert_eq!(&in_place, &expect);
    }

    /// Blocked permute round-trips through its inverse for arbitrary
    /// sizes near the block boundary.
    #[test]
    fn blocked_permute_roundtrip((data, _lens) in blocked_vec(), seed in any::<u64>()) {
        let (seq, par) = machines();
        let n = data.len();
        // Fisher-Yates on a deterministic stream.
        let mut index: Vec<usize> = (0..n).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            index.swap(i, lcg(&mut s) as usize % (i + 1));
        }
        prop_assert_eq!(seq.permute(&data, &index), par.permute(&data, &index));
        let mut inverse = vec![0usize; n];
        for (i, &p) in index.iter().enumerate() {
            inverse[p] = i;
        }
        let there = par.permute(&data, &index);
        prop_assert_eq!(par.permute(&there, &inverse), data);
    }
}
