//! Property tests for the scan-model vector machine (experiment E24):
//! the rayon-parallel backend must be observationally identical to the
//! sequential reference backend, and the primitives must obey their
//! algebraic laws.

use proptest::prelude::*;
use scan_model::ops::{Max, Min, Sum};
use scan_model::{Backend, Direction, FusedOp, Machine, ScanKind, Segments};

/// A random segmented vector: data plus segment lengths that sum to its
/// length.
fn segmented_vec() -> impl Strategy<Value = (Vec<i64>, Vec<usize>)> {
    prop::collection::vec(-1000i64..1000, 1..400).prop_flat_map(|data| {
        let n = data.len();
        prop::collection::vec(1usize..20, 1..n.max(2))
            .prop_map(move |mut lens| {
                // Trim / extend to cover exactly n lanes.
                let mut total = 0usize;
                let mut out = Vec::new();
                for l in lens.drain(..) {
                    if total + l >= n {
                        out.push(n - total);
                        total = n;
                        break;
                    }
                    total += l;
                    out.push(l);
                }
                if total < n {
                    out.push(n - total);
                }
                out.retain(|&l| l > 0);
                (out, n)
            })
            .prop_map(move |(lens, _)| lens)
            .prop_map({
                let data = data.clone();
                move |lens| (data.clone(), lens)
            })
    })
}

fn machines() -> (Machine, Machine) {
    (
        Machine::new(Backend::Sequential),
        Machine::new(Backend::Parallel).with_par_threshold(1),
    )
}

proptest! {
    /// Parallel scans are bit-identical to sequential scans for every
    /// direction/kind/operator combination.
    #[test]
    fn backend_equivalence_scans((data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let (seq, par) = machines();
        for dir in [Direction::Up, Direction::Down] {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                prop_assert_eq!(
                    seq.scan(&data, &seg, Sum, dir, kind),
                    par.scan(&data, &seg, Sum, dir, kind)
                );
                prop_assert_eq!(
                    seq.scan(&data, &seg, Min, dir, kind),
                    par.scan(&data, &seg, Min, dir, kind)
                );
                prop_assert_eq!(
                    seq.scan(&data, &seg, Max, dir, kind),
                    par.scan(&data, &seg, Max, dir, kind)
                );
            }
        }
    }

    /// A segmented scan equals independent flat scans of each segment.
    #[test]
    fn segmented_scan_is_per_segment_scan((data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let (seq, _) = machines();
        let whole = seq.up_scan_seg(&data, &seg, Sum, ScanKind::Inclusive);
        for r in seg.ranges() {
            let part = seq.up_scan(&data[r.clone()], Sum, ScanKind::Inclusive);
            prop_assert_eq!(&whole[r], &part[..]);
        }
    }

    /// Exclusive scan is the inclusive scan shifted by one lane within each
    /// segment, with the identity at segment heads.
    #[test]
    fn exclusive_is_shifted_inclusive((data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let (seq, _) = machines();
        let inc = seq.up_scan_seg(&data, &seg, Sum, ScanKind::Inclusive);
        let exc = seq.up_scan_seg(&data, &seg, Sum, ScanKind::Exclusive);
        for (i, &f) in seg.flags().iter().enumerate() {
            if f {
                prop_assert_eq!(exc[i], 0);
            } else {
                prop_assert_eq!(exc[i], inc[i - 1]);
            }
        }
    }

    /// Down-scan of data equals up-scan of the reversed data, reversed
    /// (with segments reversed as well).
    #[test]
    fn down_scan_is_reversed_up_scan((data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let (seq, _) = machines();
        let down = seq.down_scan_seg(&data, &seg, Sum, ScanKind::Inclusive);
        let mut rev_data = data.clone();
        rev_data.reverse();
        let mut rev_lens = lens.clone();
        rev_lens.reverse();
        let rev_seg = Segments::from_lengths(&rev_lens).unwrap();
        let mut up = seq.up_scan_seg(&rev_data, &rev_seg, Sum, ScanKind::Inclusive);
        up.reverse();
        prop_assert_eq!(down, up);
    }

    /// Unshuffle is a stable partition: within each segment the false-class
    /// lanes appear first, in original order, then the true-class lanes in
    /// original order; the multiset of lanes is preserved.
    #[test]
    fn unshuffle_is_stable_partition(
        (data, lens) in segmented_vec(),
        seed in any::<u64>(),
    ) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let class: Vec<bool> = (0..data.len())
            .map(|i| (seed.wrapping_mul(i as u64 + 1).wrapping_add(i as u64 * 31)).is_multiple_of(3))
            .collect();
        for m in [machines().0, machines().1] {
            let layout = m.unshuffle_layout(&seg, &class);
            let out = m.apply_unshuffle(&data, &layout);
            for (s, r) in seg.ranges().enumerate() {
                let (na, nb) = layout.counts[s];
                prop_assert_eq!(na + nb, r.len());
                let expect_left: Vec<i64> =
                    r.clone().filter(|&i| !class[i]).map(|i| data[i]).collect();
                let expect_right: Vec<i64> =
                    r.clone().filter(|&i| class[i]).map(|i| data[i]).collect();
                prop_assert_eq!(&out[r.start..r.start + na], &expect_left[..]);
                prop_assert_eq!(&out[r.start + na..r.end], &expect_right[..]);
            }
        }
    }

    /// Cloning preserves order and inserts each clone right after its
    /// original.
    #[test]
    fn cloning_inserts_adjacent_copies(
        (data, lens) in segmented_vec(),
        seed in any::<u64>(),
    ) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let flags: Vec<bool> = (0..data.len())
            .map(|i| (seed.wrapping_add(i as u64 * 2654435761)).is_multiple_of(4))
            .collect();
        for m in [machines().0, machines().1] {
            let layout = m.clone_layout(&seg, &flags);
            let out = m.apply_clone(&data, &layout);
            // Reference: sequential expansion.
            let mut expect = Vec::new();
            for (i, &v) in data.iter().enumerate() {
                expect.push(v);
                if flags[i] {
                    expect.push(v);
                }
            }
            prop_assert_eq!(out, expect);
            // Segment lengths grow by the number of flagged lanes inside.
            let want_lens: Vec<usize> = seg
                .ranges()
                .map(|r| r.len() + r.filter(|&i| flags[i]).count())
                .collect();
            prop_assert_eq!(layout.seg.lengths(), want_lens);
        }
    }

    /// Deletion keeps exactly the unflagged lanes, in order.
    #[test]
    fn deletion_keeps_survivors_in_order(
        (data, lens) in segmented_vec(),
        seed in any::<u64>(),
    ) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let flags: Vec<bool> = (0..data.len())
            .map(|i| (seed ^ (i as u64 * 0x9E3779B9)) % 3 == 1)
            .collect();
        for m in [machines().0, machines().1] {
            let layout = m.delete_layout(&seg, &flags);
            let out = m.apply_delete(&data, &layout);
            let expect: Vec<i64> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| !flags[*i])
                .map(|(_, &v)| v)
                .collect();
            prop_assert_eq!(out, expect);
            let total_kept: usize = layout.kept_per_segment.iter().sum();
            prop_assert_eq!(total_kept, layout.src_lane.len());
        }
    }

    /// The segment counts primitive reports exact segment lengths.
    #[test]
    fn segment_counts_match_lengths((_data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        for m in [machines().0, machines().1] {
            let counts = m.segment_counts(&seg);
            let want: Vec<u64> = lens.iter().map(|&l| l as u64).collect();
            prop_assert_eq!(counts, want);
        }
    }

    /// Segmented sort yields per-segment sorted order and is a permutation.
    #[test]
    fn segmented_sort_sorts_each_segment((data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        for m in [machines().0, machines().1] {
            let order = m.segmented_sort_perm(&seg, &data, |a, b| a.cmp(b));
            let sorted = m.gather(&data, &order);
            for r in seg.ranges() {
                let window = &sorted[r.clone()];
                prop_assert!(window.windows(2).all(|w| w[0] <= w[1]));
                let mut orig: Vec<i64> = data[r].to_vec();
                let mut got: Vec<i64> = window.to_vec();
                orig.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(orig, got);
            }
        }
    }

    /// Permute then inverse-permute is the identity.
    #[test]
    fn permute_roundtrip(data in prop::collection::vec(any::<i32>(), 1..200), seed in any::<u64>()) {
        let n = data.len();
        // Build a deterministic pseudo-random permutation from the seed.
        let mut index: Vec<usize> = (0..n).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s % (i as u64 + 1)) as usize;
            index.swap(i, j);
        }
        for m in [machines().0, machines().1] {
            let scattered = m.permute(&data, &index);
            // Gathering through the same index inverts the scatter.
            let back = m.gather(&scattered, &index);
            prop_assert_eq!(&back, &data);
        }
    }

    /// A fused multi-lane scan is bit-identical to composing the
    /// corresponding single-lane scans, on both backends, for every
    /// direction/kind combination.
    #[test]
    fn fused_scan_lanes_match_composed_scans((data, lens) in segmented_vec()) {
        let seg = Segments::from_lengths(&lens).unwrap();
        let b: Vec<i64> = data.iter().map(|&v| v.wrapping_mul(3) - 7).collect();
        let c: Vec<i64> = data.iter().rev().copied().collect();
        for m in [machines().0, machines().1] {
            for dir in [Direction::Up, Direction::Down] {
                for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                    let outs = m.scan_lanes(
                        &[(&data, FusedOp::Sum), (&b, FusedOp::Min), (&c, FusedOp::Max)],
                        &seg,
                        dir,
                        kind,
                    );
                    prop_assert_eq!(&outs[0], &m.scan(&data, &seg, Sum, dir, kind));
                    prop_assert_eq!(&outs[1], &m.scan(&b, &seg, Min, dir, kind));
                    prop_assert_eq!(&outs[2], &m.scan(&c, &seg, Max, dir, kind));
                }
            }
        }
    }

    /// Every `_into` variant writes exactly what its allocating form
    /// returns, including when the output buffer is a recycled lease that
    /// arrives with stale capacity.
    #[test]
    fn into_variants_match_allocating_forms(
        (data, lens) in segmented_vec(),
        seed in any::<u64>(),
    ) {
        let seg = Segments::from_lengths(&lens).unwrap();
        for m in [machines().0, machines().1] {
            // Pre-populate the arena with a dirty buffer so the `_into`
            // paths exercise capacity reuse, not just fresh vectors.
            let mut dirty: Vec<i64> = m.lease();
            dirty.resize(data.len() / 2 + 1, 42);
            m.recycle(dirty);

            let mut out: Vec<i64> = m.lease();
            m.scan_into(&data, &seg, Sum, Direction::Down, ScanKind::Inclusive, &mut out);
            prop_assert_eq!(&out, &m.scan(&data, &seg, Sum, Direction::Down, ScanKind::Inclusive));
            m.recycle(out);

            let mut out: Vec<i64> = m.lease();
            m.map_into(&data, |v| v ^ 1, &mut out);
            prop_assert_eq!(&out, &m.map(&data, |v| v ^ 1));
            m.recycle(out);

            let b: Vec<i64> = data.iter().map(|&v| v.wrapping_add(5)).collect();
            let mut out: Vec<i64> = m.lease();
            m.zip_map_into(&data, &b, |x, y| x.min(y), &mut out);
            prop_assert_eq!(&out, &m.zip_map(&data, &b, |x, y| x.min(y)));
            m.recycle(out);

            // Fused multi-lane elementwise fill: each lane equals the
            // corresponding plain map.
            let mut lanes: [Vec<i64>; 3] = [m.lease(), m.lease(), m.lease()];
            m.fill_lanes_into(
                data.len(),
                |i| [data[i].wrapping_mul(3), data[i] ^ 7, data[i].wrapping_sub(b[i])],
                &mut lanes,
            );
            prop_assert_eq!(&lanes[0], &m.map(&data, |v| v.wrapping_mul(3)));
            prop_assert_eq!(&lanes[1], &m.map(&data, |v| v ^ 7));
            prop_assert_eq!(&lanes[2], &m.zip_map(&data, &b, |x, y| x.wrapping_sub(y)));
            for lane in lanes {
                m.recycle(lane);
            }

            // Pseudo-random permutation for permute/gather.
            let n = data.len();
            let mut index: Vec<usize> = (0..n).collect();
            let mut s = seed | 1;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s % (i as u64 + 1)) as usize;
                index.swap(i, j);
            }
            let mut out: Vec<i64> = m.lease();
            m.permute_into(&data, &index, &mut out);
            prop_assert_eq!(&out, &m.permute(&data, &index));
            m.recycle(out);

            let mut out: Vec<i64> = m.lease();
            m.gather_into(&data, &index, &mut out);
            prop_assert_eq!(&out, &m.gather(&data, &index));
            m.recycle(out);

            // Structural primitives through the same layouts.
            let flags: Vec<bool> = (0..n)
                .map(|i| (seed ^ (i as u64 * 0x9E3779B9)).is_multiple_of(3))
                .collect();
            let cl = m.clone_layout(&seg, &flags);
            let mut out: Vec<i64> = m.lease();
            m.apply_clone_into(&data, &cl, &mut out);
            prop_assert_eq!(&out, &m.apply_clone(&data, &cl));
            m.recycle(out);

            let un = m.unshuffle_layout(&seg, &flags);
            let mut out: Vec<i64> = m.lease();
            m.apply_unshuffle_into(&data, &un, &mut out);
            prop_assert_eq!(&out, &m.apply_unshuffle(&data, &un));
            m.recycle(out);

            let dl = m.delete_layout(&seg, &flags);
            let mut out: Vec<i64> = m.lease();
            m.apply_delete_into(&data, &dl, &mut out);
            prop_assert_eq!(&out, &m.apply_delete(&data, &dl));
            m.recycle(out);
        }
    }
}

/// Fused scans on the degenerate segment shapes: empty input, all-singleton
/// segments, and a single world-spanning segment — both backends, checked
/// against the composed single-lane scans, plus the fused-pass stats
/// invariant `scans == scan_passes + fused_lanes_saved`.
#[test]
fn fused_scan_lanes_edge_shapes() {
    for m in [machines().0, machines().1] {
        // Empty input.
        let empty: Vec<i64> = Vec::new();
        let seg = Segments::single(0);
        let outs = m.scan_lanes(
            &[(&empty, FusedOp::Sum), (&empty, FusedOp::Max)],
            &seg,
            Direction::Up,
            ScanKind::Inclusive,
        );
        assert!(outs.iter().all(|o| o.is_empty()));

        // All-singleton segments and one giant segment.
        let shapes: Vec<(Vec<i64>, Segments)> = vec![
            (vec![7, -3, 11], Segments::from_lengths(&[1, 1, 1]).unwrap()),
            (
                (0..10_000).map(|i| (i * i) % 97 - 48).collect(),
                Segments::single(10_000),
            ),
        ];
        for (data, seg) in shapes {
            for dir in [Direction::Up, Direction::Down] {
                for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                    let outs = m.scan_lanes(
                        &[
                            (&data, FusedOp::Sum),
                            (&data, FusedOp::Min),
                            (&data, FusedOp::Max),
                        ],
                        &seg,
                        dir,
                        kind,
                    );
                    assert_eq!(outs[0], m.scan(&data, &seg, Sum, dir, kind));
                    assert_eq!(outs[1], m.scan(&data, &seg, Min, dir, kind));
                    assert_eq!(outs[2], m.scan(&data, &seg, Max, dir, kind));
                }
            }
        }

        let stats = m.stats();
        assert_eq!(
            stats.scans,
            stats.scan_passes + stats.fused_lanes_saved,
            "fused-pass invariant violated: {stats:?}"
        );
        assert!(stats.fused_lanes_saved > 0);
    }
}

/// Clone/unshuffle `_into` variants on the degenerate shapes a build loop
/// can reach: the empty frontier (zero segments, zero lanes) and the
/// one-lane frontier — both backends, with warm arena buffers so the
/// `_into` reuse path is the one exercised.
#[test]
fn clone_unshuffle_into_empty_and_single_lane() {
    for m in [machines().0, machines().1] {
        // Warm the arena with dirty buffers of a mismatched length.
        let mut dirty: Vec<i64> = m.lease();
        dirty.resize(17, 99);
        m.recycle(dirty);

        // Empty frontier: no segments, no lanes.
        let empty: Vec<i64> = Vec::new();
        let seg = Segments::single(0);
        let flags: Vec<bool> = Vec::new();

        let cl = m.clone_layout(&seg, &flags);
        let mut out: Vec<i64> = m.lease();
        m.apply_clone_into(&empty, &cl, &mut out);
        assert!(out.is_empty());
        assert_eq!(out, m.apply_clone(&empty, &cl));
        m.recycle(out);

        let un = m.unshuffle_layout(&seg, &flags);
        let mut out: Vec<i64> = m.lease();
        m.apply_unshuffle_into(&empty, &un, &mut out);
        assert!(out.is_empty());
        assert_eq!(out, m.apply_unshuffle(&empty, &un));
        m.recycle(out);

        // One lane in one segment, both flag polarities.
        for flag in [false, true] {
            let data = vec![42i64];
            let seg = Segments::single(1);

            let cl = m.clone_layout(&seg, &[flag]);
            let mut out: Vec<i64> = m.lease();
            m.apply_clone_into(&data, &cl, &mut out);
            assert_eq!(out, m.apply_clone(&data, &cl));
            assert_eq!(out.len(), if flag { 2 } else { 1 });
            m.recycle(out);

            let un = m.unshuffle_layout(&seg, &[flag]);
            let mut out: Vec<i64> = m.lease();
            m.apply_unshuffle_into(&data, &un, &mut out);
            assert_eq!(out, m.apply_unshuffle(&data, &un));
            assert_eq!(out, data);
            m.recycle(out);
        }
    }
}

proptest! {
    /// All-singleton segments (every node holds exactly one lane — the
    /// deepest-frontier shape of a quadtree build) through the clone and
    /// unshuffle layouts: `_into` variants must match the allocating
    /// forms on both backends, and the shapes must be what singletons
    /// force (clone doubles flagged lanes; unshuffle of a singleton is
    /// the identity).
    #[test]
    fn clone_unshuffle_into_all_singleton_segments(
        flags in prop::collection::vec(any::<bool>(), 1..40),
        seed in any::<u64>(),
    ) {
        let n = flags.len();
        let data: Vec<i64> = (0..n)
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9E3779B9)) as i64)
            .collect();
        let seg = Segments::from_lengths(&vec![1; n]).unwrap();
        for m in [machines().0, machines().1] {
            let cl = m.clone_layout(&seg, &flags);
            let mut out: Vec<i64> = m.lease();
            m.apply_clone_into(&data, &cl, &mut out);
            prop_assert_eq!(&out, &m.apply_clone(&data, &cl));
            let doubled = n + flags.iter().filter(|&&f| f).count();
            prop_assert_eq!(out.len(), doubled);
            m.recycle(out);

            let un = m.unshuffle_layout(&seg, &flags);
            let mut out: Vec<i64> = m.lease();
            m.apply_unshuffle_into(&data, &un, &mut out);
            prop_assert_eq!(&out, &m.apply_unshuffle(&data, &un));
            // A one-lane segment cannot reorder: unshuffle is identity.
            prop_assert_eq!(&out, &data);
            m.recycle(out);
        }
    }
}
