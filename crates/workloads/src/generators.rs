//! Synthetic line-segment map generators.
//!
//! Stand-ins for the road-map workloads (TIGER/Line census maps) used by
//! the authors' experimental papers. Each generator produces integer-grid
//! coordinates strictly inside a power-of-two world, and is fully
//! deterministic given its seed.

use dp_geom::{LineSeg, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named line-segment collection together with its world rectangle.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable generator description (appears in experiment tables).
    pub name: String,
    /// The world all segments live in (origin at (0,0), power-of-two side).
    pub world: Rect,
    /// The segments.
    pub segs: Vec<LineSeg>,
}

impl Dataset {
    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// `true` when the dataset has no segments.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

/// A square world `[0, size] × [0, size]`.
///
/// # Panics
///
/// Panics unless `size` is a positive power of two (this keeps every
/// quadtree split coordinate dyadic, hence exact in `f64`).
pub fn square_world(size: u32) -> Rect {
    assert!(
        size.is_power_of_two(),
        "world size {size} must be a power of two"
    );
    Rect::from_coords(0.0, 0.0, size as f64, size as f64)
}

fn grid_point(rng: &mut StdRng, size: u32) -> Point {
    // Strictly inside the half-open world: coordinates in 0..size.
    Point::new(rng.gen_range(0..size) as f64, rng.gen_range(0..size) as f64)
}

/// Uniform random segments: endpoints drawn uniformly from the grid, with
/// segment length capped at `max_len` (small caps model road maps, where
/// edges are short relative to the map).
pub fn uniform_segments(n: usize, size: u32, max_len: u32, seed: u64) -> Dataset {
    assert!(max_len >= 1, "max_len must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut segs = Vec::with_capacity(n);
    while segs.len() < n {
        let a = grid_point(&mut rng, size);
        let dx = rng.gen_range(-(max_len as i64)..=max_len as i64);
        let dy = rng.gen_range(-(max_len as i64)..=max_len as i64);
        let bx = (a.x as i64 + dx).clamp(0, size as i64 - 1) as f64;
        let by = (a.y as i64 + dy).clamp(0, size as i64 - 1) as f64;
        let b = Point::new(bx, by);
        if a == b {
            continue;
        }
        segs.push(LineSeg::new(a, b));
    }
    Dataset {
        name: format!("uniform(n={n}, size={size}, max_len={max_len})"),
        world: square_world(size),
        segs,
    }
}

/// Clustered segments: `clusters` cluster centres, each receiving an equal
/// share of short segments within a `spread`-sized neighbourhood. Models
/// urban cores in a sparse map and stresses unbalanced decompositions.
pub fn clustered_segments(n: usize, clusters: usize, spread: u32, size: u32, seed: u64) -> Dataset {
    assert!(clusters >= 1, "need at least one cluster");
    assert!(spread >= 2, "spread must be at least 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Point> = (0..clusters).map(|_| grid_point(&mut rng, size)).collect();
    let mut segs = Vec::with_capacity(n);
    while segs.len() < n {
        let c = centres[rng.gen_range(0..clusters)];
        let jitter = |rng: &mut StdRng, v: f64| {
            let lo = (v as i64 - spread as i64).max(0);
            let hi = (v as i64 + spread as i64).min(size as i64 - 1);
            rng.gen_range(lo..=hi) as f64
        };
        let a = Point::new(jitter(&mut rng, c.x), jitter(&mut rng, c.y));
        let b = Point::new(jitter(&mut rng, c.x), jitter(&mut rng, c.y));
        if a == b {
            continue;
        }
        segs.push(LineSeg::new(a, b));
    }
    Dataset {
        name: format!("clustered(n={n}, clusters={clusters}, spread={spread}, size={size})"),
        world: square_world(size),
        segs,
    }
}

/// A road-network-like map: a `cells × cells` grid of junctions, each
/// perturbed within its cell, connected to its east and north neighbours
/// with probability 0.9. Produces short, connected, axis-dominant edges —
/// the regime of TIGER-style street maps.
pub fn road_network(cells: u32, size: u32, seed: u64) -> Dataset {
    assert!(cells >= 2, "need at least a 2x2 junction grid");
    assert!(size >= cells, "world must be at least as large as the grid");
    let mut rng = StdRng::seed_from_u64(seed);
    let cell = size / cells;
    assert!(cell >= 1);
    let jitter_max = (cell / 2).max(1);
    let mut junctions = vec![Point::new(0.0, 0.0); (cells * cells) as usize];
    for gy in 0..cells {
        for gx in 0..cells {
            let bx = gx * cell + cell / 2;
            let by = gy * cell + cell / 2;
            let jx = (bx as i64 + rng.gen_range(0..jitter_max) as i64 - (jitter_max / 2) as i64)
                .clamp(0, size as i64 - 1);
            let jy = (by as i64 + rng.gen_range(0..jitter_max) as i64 - (jitter_max / 2) as i64)
                .clamp(0, size as i64 - 1);
            junctions[(gy * cells + gx) as usize] = Point::new(jx as f64, jy as f64);
        }
    }
    let mut segs = Vec::new();
    for gy in 0..cells {
        for gx in 0..cells {
            let here = junctions[(gy * cells + gx) as usize];
            if gx + 1 < cells && rng.gen_bool(0.9) {
                let east = junctions[(gy * cells + gx + 1) as usize];
                if here != east {
                    segs.push(LineSeg::new(here, east));
                }
            }
            if gy + 1 < cells && rng.gen_bool(0.9) {
                let north = junctions[((gy + 1) * cells + gx) as usize];
                if here != north {
                    segs.push(LineSeg::new(here, north));
                }
            }
        }
    }
    Dataset {
        name: format!("road_network(cells={cells}, size={size})"),
        world: square_world(size),
        segs,
    }
}

/// A strictly planar polygonal map: one axis-aligned rectangular ring per
/// grid cell, corners jittered within the cell. Edges of different rings
/// never touch and each ring's edges meet only at shared corners — the
/// ideal PM quadtree input (a *polygonal map* in Samet's sense), used by
/// the PM₁ scaling experiments where non-vertex crossings would otherwise
/// force max-depth subdivision.
pub fn polygon_rings(cells: u32, size: u32, seed: u64) -> Dataset {
    assert!(cells >= 1, "need at least one cell");
    assert!(
        size / cells >= 8,
        "cells must be at least 8 wide to fit a jittered ring"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let cell = size / cells;
    let mut segs = Vec::with_capacity((cells * cells * 4) as usize);
    for gy in 0..cells {
        for gx in 0..cells {
            // Ring corners strictly inside the cell with a 1-unit margin,
            // so rings in adjacent cells never touch.
            let x0 = gx * cell + 1;
            let y0 = gy * cell + 1;
            let x1 = (gx + 1) * cell - 2;
            let y1 = (gy + 1) * cell - 2;
            // Rings are at least 2 units wide and tall: a unit-size PM
            // block around a corner must not be ridden by the opposite
            // (non-incident) edge, or the PM1 criterion becomes
            // unsatisfiable at any depth.
            let ax = rng.gen_range(x0..=x1 - 2) as f64;
            let ay = rng.gen_range(y0..=y1 - 2) as f64;
            let bx = rng.gen_range(ax as u32 + 2..=x1) as f64;
            let by = rng.gen_range(ay as u32 + 2..=y1) as f64;
            segs.push(LineSeg::from_coords(ax, ay, bx, ay));
            segs.push(LineSeg::from_coords(bx, ay, bx, by));
            segs.push(LineSeg::from_coords(bx, by, ax, by));
            segs.push(LineSeg::from_coords(ax, by, ax, ay));
        }
    }
    Dataset {
        name: format!("polygon_rings(cells={cells}, size={size})"),
        world: square_world(size),
        segs,
    }
}

/// The pathological pair of the paper's Fig. 2: one long segment plus a
/// second segment with an endpoint very close (grid distance 1 at world
/// resolution `size`) to one of the first segment's endpoints. Inserting
/// the second segment into a PM₁ quadtree forces a deep cascade of
/// subdivisions to separate the two vertices.
pub fn pathological_close_vertices(size: u32) -> Dataset {
    let world = square_world(size);
    let s = size as f64;
    // Line a: spans a good part of the map; one endpoint near the corner.
    let a = LineSeg::from_coords(1.0, 1.0, s * 0.75, s * 0.5);
    // Line b: endpoint at grid distance 1 from a's (1,1) endpoint.
    let b = LineSeg::from_coords(2.0, 1.0, s * 0.75, 1.0);
    Dataset {
        name: format!("pathological_close_vertices(size={size})"),
        world,
        segs: vec![a, b],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(d: &Dataset) {
        assert!(!d.is_empty());
        for s in &d.segs {
            assert!(
                d.world.contains_half_open(s.a) && d.world.contains_half_open(s.b),
                "{}: segment {} escapes the world",
                d.name,
                s
            );
            assert!(!s.is_degenerate(), "{}: degenerate segment", d.name);
            // Integer grid.
            for p in [s.a, s.b] {
                assert_eq!(p.x.fract(), 0.0);
                assert_eq!(p.y.fract(), 0.0);
            }
        }
    }

    #[test]
    fn uniform_is_valid_and_deterministic() {
        let d1 = uniform_segments(500, 1024, 32, 42);
        let d2 = uniform_segments(500, 1024, 32, 42);
        assert_eq!(d1.len(), 500);
        assert_valid(&d1);
        assert_eq!(d1.segs, d2.segs);
        let d3 = uniform_segments(500, 1024, 32, 43);
        assert_ne!(d1.segs, d3.segs);
    }

    #[test]
    fn uniform_respects_length_cap() {
        let d = uniform_segments(300, 1024, 16, 7);
        for s in &d.segs {
            assert!((s.a.x - s.b.x).abs() <= 16.0);
            assert!((s.a.y - s.b.y).abs() <= 16.0);
        }
    }

    #[test]
    fn clustered_is_valid() {
        let d = clustered_segments(400, 5, 8, 1024, 11);
        assert_eq!(d.len(), 400);
        assert_valid(&d);
    }

    #[test]
    fn clustered_actually_clusters() {
        // With tight spread, the bounding boxes of segments concentrate:
        // mean pairwise midpoint distance is far below the uniform
        // expectation (~0.52 * size).
        let size = 1024u32;
        let d = clustered_segments(300, 3, 8, size, 5);
        let mids: Vec<Point> = d.segs.iter().map(|s| s.midpoint()).collect();
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..mids.len() {
            for j in (i + 1)..mids.len() {
                total += mids[i].dist(mids[j]);
                count += 1;
            }
        }
        let mean = total / count as f64;
        assert!(
            mean < 0.45 * size as f64,
            "mean pairwise distance {mean} not clustered"
        );
    }

    #[test]
    fn road_network_is_valid_and_connectedish() {
        let d = road_network(16, 1024, 3);
        assert_valid(&d);
        // ~2 edges per junction at 0.9 each; allow generous slack.
        let expected = 2.0 * 16.0 * 15.0 * 0.9;
        assert!((d.len() as f64) > expected * 0.8);
        assert!((d.len() as f64) <= 2.0 * 16.0 * 15.0);
    }

    #[test]
    fn polygon_rings_are_planar_and_valid() {
        let d = polygon_rings(8, 256, 3);
        assert_eq!(d.len(), 8 * 8 * 4);
        assert_valid(&d);
        // No two edges from different rings intersect; within a ring,
        // edges meet only at shared corners.
        for i in 0..d.segs.len() {
            for j in (i + 1)..d.segs.len() {
                let same_ring = i / 4 == j / 4;
                let crossing = dp_geom::segments_intersect(&d.segs[i], &d.segs[j]);
                if !same_ring {
                    assert!(!crossing, "rings {} and {} touch", i / 4, j / 4);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 8 wide")]
    fn polygon_rings_rejects_tiny_cells() {
        polygon_rings(64, 256, 1);
    }

    #[test]
    fn pathological_pair_has_close_vertices() {
        let d = pathological_close_vertices(64);
        assert_eq!(d.len(), 2);
        assert_valid(&d);
        let dist = d.segs[0].a.dist(d.segs[1].a);
        assert_eq!(dist, 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_world_rejected() {
        square_world(100);
    }
}
