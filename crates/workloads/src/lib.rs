//! # dp-workloads — datasets for the dp-spatial reproduction
//!
//! The paper's experiments ran over vector map data (road-map-like line
//! segment collections; the authors' companion papers used TIGER/Line
//! census maps, which are not available here). This crate provides:
//!
//! * [`paper`] — a reconstruction of the paper's running 9-segment example
//!   dataset (its Figs. 1, 3, 4 and 5). The paper prints no coordinates, so
//!   ours are chosen to reproduce the *described topology*: segments `c`,
//!   `d` and `i` share a vertex, several segments cross the root split
//!   axes, and the shared-vertex region drives the bucket PMR quadtree to
//!   its maximum depth (paper Fig. 4).
//! * [`generators`] — synthetic map generators spanning the structural
//!   regimes that drive index behaviour: uniform random segments,
//!   clustered segments, a perturbed-grid road network, and the
//!   pathological close-vertices pair of the paper's Fig. 2.
//! * [`requests`] — deterministic mixed query request streams (window,
//!   point-in-window, k-nearest) that drive the sharded batch query
//!   service in the `dp-service` crate.
//!
//! All generators emit coordinates on an integer grid strictly inside a
//! power-of-two world, which keeps every quadtree split coordinate dyadic
//! and therefore every `f64` comparison exact (see the `dp-geom` crate
//! docs).

pub mod generators;
pub mod paper;
pub mod requests;

pub use generators::{
    clustered_segments, pathological_close_vertices, polygon_rings, road_network, square_world,
    uniform_segments, Dataset,
};
pub use paper::{paper_dataset, paper_world, PAPER_LABELS};
pub use requests::{
    open_loop_schedule, poison_stream, request_stream, request_stream_with_updates,
    restart_scenario, skew_hot_windows, Arrival, OpenLoopSchedule, Request, RequestMix,
    RestartScenario,
};
