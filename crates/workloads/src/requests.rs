//! Query request streams for the sharded service.
//!
//! The paper's primitives exist to make *operations* data-parallel; the
//! service layer (crate `dp-service`) batches many concurrent requests
//! into lockstep descents. This module generates deterministic mixed
//! request streams to drive it: window queries across a spread of sizes
//! (including degenerate and world-spanning windows), point-in-window
//! probes, and k-nearest requests.
//!
//! Like the map generators, streams are fully deterministic given their
//! seed and use integer-grid coordinates inside a power-of-two world, so
//! differential tests can replay the exact same stream against different
//! engines.

use dp_geom::{LineSeg, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scan_model::{FaultPlan, FaultSite};

/// One service request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// All segments intersecting the window (closed semantics, exact
    /// geometry filter) — the batched form of
    /// `DpQuadtree::window_query`.
    Window(Rect),
    /// All segments passing through the point: a window query over the
    /// degenerate window `Rect::point(p)`.
    PointInWindow(Point),
    /// The `k` nearest segments to `p` by true segment distance,
    /// nearest first (ties broken by ascending id).
    KNearest {
        /// Query point.
        p: Point,
        /// Number of neighbours requested.
        k: usize,
    },
    /// All pairs `(base_id, overlay_id)` of a base segment and an overlay
    /// segment intersecting *inside* the window — the windowed form of
    /// the spatial join, routed to every shard the window overlaps.
    Join(Rect),
    /// Add one segment to the serving collection. The service answers
    /// with the new segment's logical id.
    Insert(LineSeg),
    /// Remove the segment with the given *logical* id (its position in
    /// the serving collection at the moment the request executes —
    /// exactly the id a preceding query response would report).
    Delete(u32),
    /// The skyline (maximal points under closed dominance) of the
    /// midpoints of all segments intersecting the window; the service
    /// answers with the surviving segment ids.
    Skyline(Rect),
    /// Count / weight-sum / weight-max over the segments whose midpoint
    /// lies in the closed lower-left quadrant of the point (dominated-set
    /// aggregation; weights are fixed-point segment lengths).
    DominanceAgg(Point),
}

/// Relative weights of the request kinds in a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMix {
    /// Weight of [`Request::Window`].
    pub window: u32,
    /// Weight of [`Request::PointInWindow`].
    pub point: u32,
    /// Weight of [`Request::KNearest`].
    pub knearest: u32,
    /// Weight of [`Request::Join`].
    pub join: u32,
    /// Weight of [`Request::Insert`].
    pub insert: u32,
    /// Weight of [`Request::Delete`].
    pub delete: u32,
    /// Weight of [`Request::Skyline`].
    pub skyline: u32,
    /// Weight of [`Request::DominanceAgg`].
    pub dominance: u32,
}

impl RequestMix {
    /// Windows only.
    pub const WINDOW_ONLY: RequestMix = RequestMix {
        window: 1,
        point: 0,
        knearest: 0,
        join: 0,
        insert: 0,
        delete: 0,
        skyline: 0,
        dominance: 0,
    };

    /// The default service mix: mostly windows, some point probes, a few
    /// k-nearest requests. No joins, so streams generated before the
    /// `Join` family existed replay bit-identically.
    pub const DEFAULT: RequestMix = RequestMix {
        window: 6,
        point: 3,
        knearest: 1,
        join: 0,
        insert: 0,
        delete: 0,
        skyline: 0,
        dominance: 0,
    };

    /// The default mix with windowed joins folded in, for services built
    /// with an overlay layer.
    pub const WITH_JOINS: RequestMix = RequestMix {
        window: 5,
        point: 3,
        knearest: 1,
        join: 1,
        insert: 0,
        delete: 0,
        skyline: 0,
        dominance: 0,
    };

    /// A read-mostly mix with writes folded in: inserts outnumber
    /// deletes 2:1 so the collection grows over the stream. Reads keep
    /// the `WITH_JOINS`-era relative order; the write arms draw from the
    /// rng only when picked, so zero-weight mixes replay bit-identically.
    pub const WITH_UPDATES: RequestMix = RequestMix {
        window: 4,
        point: 2,
        knearest: 1,
        join: 0,
        insert: 2,
        delete: 1,
        skyline: 0,
        dominance: 0,
    };

    /// The update mix with dominance reads folded in: skyline and
    /// dominated-set aggregation requests ride alongside windows, probes
    /// and writes. The new arms sit after every existing arm in the pick
    /// chain and draw from the rng only when picked, so zero-weight
    /// mixes replay bit-identically (the regression suite pins this).
    pub const WITH_DOMINANCE: RequestMix = RequestMix {
        window: 4,
        point: 2,
        knearest: 1,
        join: 0,
        insert: 2,
        delete: 1,
        skyline: 2,
        dominance: 2,
    };

    fn total(&self) -> u32 {
        self.window
            + self.point
            + self.knearest
            + self.join
            + self.insert
            + self.delete
            + self.skyline
            + self.dominance
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix::DEFAULT
    }
}

fn grid_point(rng: &mut StdRng, world: &Rect) -> Point {
    let w = (world.max.x - world.min.x) as u32;
    let h = (world.max.y - world.min.y) as u32;
    Point::new(
        world.min.x + rng.gen_range(0..w) as f64,
        world.min.y + rng.gen_range(0..h) as f64,
    )
}

/// A random query window over `world`: mostly small-to-medium boxes, with
/// occasional degenerate (zero-area) and world-spanning windows so
/// streams exercise the routing edge cases.
fn random_window(rng: &mut StdRng, world: &Rect) -> Rect {
    let size = (world.max.x - world.min.x) as u32;
    match rng.gen_range(0u32..20) {
        0 => *world,                              // world-spanning
        1 => Rect::point(grid_point(rng, world)), // degenerate
        _ => {
            let a = grid_point(rng, world);
            let wmax = (size / 4).max(1);
            let dx = rng.gen_range(0..=wmax) as f64;
            let dy = rng.gen_range(0..=wmax) as f64;
            Rect::from_coords(
                a.x,
                a.y,
                (a.x + dx).min(world.max.x),
                (a.y + dy).min(world.max.y),
            )
        }
    }
}

/// A deterministic stream of `n` mixed requests over `world`.
///
/// # Panics
///
/// Panics when every weight in `mix` is zero.
pub fn request_stream(world: Rect, n: usize, mix: RequestMix, seed: u64) -> Vec<Request> {
    request_stream_with_updates(world, n, mix, seed, 0)
}

/// A random non-degenerate segment on the integer grid, endpoints inside
/// the half-open world (the service's indexing precondition).
fn grid_segment(rng: &mut StdRng, world: &Rect) -> LineSeg {
    let a = grid_point(rng, world);
    loop {
        let b = grid_point(rng, world);
        if b != a {
            return LineSeg::new(a, b);
        }
    }
}

/// Like [`request_stream`], for mixes that include write requests.
///
/// The generator tracks the *live* segment count (starting from
/// `initial_live`, the size of the collection the stream will run
/// against) so every generated [`Request::Delete`] names an id that is
/// valid at its point in the stream: inserts bump the count, deletes
/// draw a logical id below it and decrement. A delete picked while the
/// count is zero degrades to a window query, keeping the stream length
/// and determinism intact.
///
/// The write arms sit *after* the read arms in the pick chain and touch
/// the rng only when picked, so any mix with zero write weights replays
/// bit-identically to the pre-update generator — the regression suite
/// pins this.
///
/// # Panics
///
/// Panics when every weight in `mix` is zero.
pub fn request_stream_with_updates(
    world: Rect,
    n: usize,
    mix: RequestMix,
    seed: u64,
    initial_live: usize,
) -> Vec<Request> {
    assert!(mix.total() > 0, "request mix must have a positive weight");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = initial_live as u32;
    (0..n)
        .map(|_| {
            let pick = rng.gen_range(0..mix.total());
            if pick < mix.window {
                Request::Window(random_window(&mut rng, &world))
            } else if pick < mix.window + mix.point {
                Request::PointInWindow(grid_point(&mut rng, &world))
            } else if pick < mix.window + mix.point + mix.knearest {
                Request::KNearest {
                    p: grid_point(&mut rng, &world),
                    k: rng.gen_range(1..=8),
                }
            } else if pick < mix.window + mix.point + mix.knearest + mix.join {
                Request::Join(random_window(&mut rng, &world))
            } else if pick < mix.window + mix.point + mix.knearest + mix.join + mix.insert {
                live += 1;
                Request::Insert(grid_segment(&mut rng, &world))
            } else if pick
                < mix.window + mix.point + mix.knearest + mix.join + mix.insert + mix.delete
            {
                // The delete arm keeps its exact pre-dominance rng draws
                // (including the degenerate-to-window fallback), so old
                // mixes replay bit-identically.
                if live == 0 {
                    Request::Window(random_window(&mut rng, &world))
                } else {
                    live -= 1;
                    Request::Delete(rng.gen_range(0..live + 1))
                }
            } else if pick
                < mix.window
                    + mix.point
                    + mix.knearest
                    + mix.join
                    + mix.insert
                    + mix.delete
                    + mix.skyline
            {
                Request::Skyline(random_window(&mut rng, &world))
            } else {
                Request::DominanceAgg(grid_point(&mut rng, &world))
            }
        })
        .collect()
}

/// A deterministic two-phase restart scenario for snapshot testing.
///
/// Phase one (`before`) runs against a freshly built service and leaves
/// it with a non-trivial serving state; phase two (`after`) runs against
/// *two* services — one warm-restarted from a snapshot saved between the
/// phases, one rebuilt cold from the same state — and must produce
/// bit-identical responses on both.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartScenario {
    /// Mixed reads and writes applied before the snapshot is taken:
    /// inserts and deletes accumulate pending overlay segments and
    /// tombstones, so the persisted state exercises every snapshot
    /// section, not just the shard trees.
    pub before: Vec<Request>,
    /// Read-only probes replayed after the restart on the warm and cold
    /// services alike.
    pub after: Vec<Request>,
}

/// A deterministic restart scenario: `writes` mixed read/write requests
/// before the snapshot (mix [`RequestMix::WITH_UPDATES`], so the saved
/// state carries pending inserts and tombstones), then `probes`
/// read-only requests after it. Both phases derive from `seed` alone;
/// `initial_live` is the size of the collection the scenario starts
/// against, exactly as in [`request_stream_with_updates`].
pub fn restart_scenario(
    world: Rect,
    writes: usize,
    probes: usize,
    seed: u64,
    initial_live: usize,
) -> RestartScenario {
    RestartScenario {
        before: request_stream_with_updates(
            world,
            writes,
            RequestMix::WITH_UPDATES,
            seed,
            initial_live,
        ),
        after: request_stream(world, probes, RequestMix::DEFAULT, seed ^ 0x5eed_cafe),
    }
}

/// One open-loop arrival: a request stamped with its virtual arrival
/// time (microseconds since the start of the run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Virtual arrival offset in microseconds from the schedule start.
    pub at_micros: u64,
    /// The request that arrives at that instant.
    pub request: Request,
}

/// A deterministic open-loop arrival schedule: requests stamped with
/// Poisson (exponential inter-arrival) virtual-clock offsets.
///
/// *Open loop* means arrival times are fixed before the run starts —
/// they do not slow down when the service does, which is what exposes
/// queueing delay and forces the admission layer to shed or absorb
/// bursts. The driver replays the schedule against the real clock,
/// submitting each request when its offset comes due.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSchedule {
    /// Offered load the schedule was generated for, in requests/second.
    pub rate_per_sec: f64,
    /// The arrivals, in nondecreasing `at_micros` order.
    pub arrivals: Vec<Arrival>,
}

impl OpenLoopSchedule {
    /// Total virtual duration of the schedule in microseconds (the last
    /// arrival's offset; 0 when empty).
    pub fn span_micros(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.at_micros)
    }
}

/// A deterministic open-loop schedule of `n` mixed requests over `world`
/// at `rate_per_sec` offered load.
///
/// Request *contents* come from [`request_stream_with_updates`] with
/// `seed`, so a schedule carries exactly the same request sequence as
/// the closed-loop stream for that seed — differential runs compare the
/// two directly. Arrival *times* draw from a second rng derived from the
/// same seed, with exponential (Poisson-process) inter-arrival gaps of
/// mean `1/rate_per_sec`; the virtual clock makes the schedule
/// replay-identical on every machine regardless of wall-clock speed.
///
/// # Panics
///
/// Panics when `rate_per_sec` is not finite and positive, or when every
/// weight in `mix` is zero.
pub fn open_loop_schedule(
    world: Rect,
    n: usize,
    mix: RequestMix,
    rate_per_sec: f64,
    seed: u64,
    initial_live: usize,
) -> OpenLoopSchedule {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "open-loop rate must be finite and positive, got {rate_per_sec}"
    );
    let requests = request_stream_with_updates(world, n, mix, seed, initial_live);
    // A distinct stream for the clock: content and timing stay
    // independently reproducible (changing the mix cannot shift the
    // arrival times and vice versa).
    let mut clock_rng = StdRng::seed_from_u64(seed ^ 0x000A_8817_1EE0_5EED);
    let mut at = 0f64; // virtual clock, seconds
    let arrivals = requests
        .into_iter()
        .map(|request| {
            // Inverse-CDF exponential sample; 1 - u in (0, 1] keeps ln
            // finite.
            let u = 1.0 - clock_rng.gen_range(0.0f64..1.0);
            at += -u.ln() / rate_per_sec;
            Arrival {
                at_micros: (at * 1e6) as u64,
                request,
            }
        })
        .collect();
    OpenLoopSchedule {
        rate_per_sec,
        arrivals,
    }
}

/// Skews the cacheable probes of `stream` toward a small hot set: each
/// [`Request::Window`] (resp. [`Request::PointInWindow`]) is remapped
/// with probability `hot_fraction` to one of `hot_count` fixed windows
/// (resp. points) drawn once from the generator's distributions.
/// Deterministic given `seed`; other request kinds are untouched.
/// Returns how many requests were remapped.
///
/// Real front-end traffic is Zipf-like — a few map viewports and
/// points of interest dominate — and this is what the service's
/// hot-window result cache exists for. The uniform streams above almost
/// never repeat a probe, so without this skew a cache benchmark
/// measures only its miss path.
///
/// # Panics
///
/// Panics when `hot_fraction` is outside `[0, 1]` or `hot_count` is 0.
pub fn skew_hot_windows(
    stream: &mut [Request],
    world: &Rect,
    hot_fraction: f64,
    hot_count: usize,
    seed: u64,
) -> usize {
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot_fraction must be in [0, 1], got {hot_fraction}"
    );
    assert!(hot_count > 0, "hot_count must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x407_5E7);
    let hot_windows: Vec<Rect> = (0..hot_count)
        .map(|_| random_window(&mut rng, world))
        .collect();
    let hot_points: Vec<Point> = (0..hot_count)
        .map(|_| grid_point(&mut rng, world))
        .collect();
    let mut remapped = 0;
    for req in stream.iter_mut() {
        match req {
            Request::Window(q) if rng.gen_bool(hot_fraction) => {
                *q = hot_windows[rng.gen_range(0..hot_count)];
                remapped += 1;
            }
            Request::PointInWindow(p) if rng.gen_bool(hot_fraction) => {
                *p = hot_points[rng.gen_range(0..hot_count)];
                remapped += 1;
            }
            _ => {}
        }
    }
    remapped
}

/// Replaces requests in `stream` with malformed ones wherever `plan`
/// fires [`FaultSite::PoisonedRequest`] (one occurrence per request, in
/// order). Each poisoned request keeps its kind but becomes unanswerable:
/// windows and join windows get NaN coordinates, points go non-finite,
/// k-nearest drops to `k = 0`, inserts get NaN segments, and deletes name
/// `u32::MAX` (never a live logical id). Returns how many requests were
/// poisoned.
///
/// A recovering service must *reject* these slots with a typed error —
/// not crash, and not let them disturb the answers of neighbouring
/// requests.
pub fn poison_stream(stream: &mut [Request], plan: &FaultPlan) -> usize {
    let mut poisoned = 0;
    for req in stream.iter_mut() {
        if plan.should_fire(FaultSite::PoisonedRequest).is_none() {
            continue;
        }
        poisoned += 1;
        // `Rect::new` asserts min <= max, which NaN fails — poisoned
        // rectangles are built from the public fields directly.
        let nan_rect = Rect {
            min: Point::new(f64::NAN, f64::NAN),
            max: Point::new(f64::NAN, f64::NAN),
        };
        *req = match *req {
            Request::Window(_) => Request::Window(nan_rect),
            Request::Join(_) => Request::Join(nan_rect),
            Request::PointInWindow(_) => {
                Request::PointInWindow(Point::new(f64::INFINITY, f64::NAN))
            }
            Request::KNearest { p, .. } => Request::KNearest { p, k: 0 },
            Request::Insert(_) => Request::Insert(LineSeg {
                a: Point::new(f64::NAN, f64::NAN),
                b: Point::new(f64::NAN, f64::NAN),
            }),
            Request::Delete(_) => Request::Delete(u32::MAX),
            Request::Skyline(_) => Request::Skyline(nan_rect),
            Request::DominanceAgg(_) => {
                Request::DominanceAgg(Point::new(f64::NAN, f64::NEG_INFINITY))
            }
        };
    }
    poisoned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::square_world;
    use scan_model::FaultMode;

    #[test]
    fn stream_is_deterministic() {
        let w = square_world(64);
        let a = request_stream(w, 200, RequestMix::DEFAULT, 7);
        let b = request_stream(w, 200, RequestMix::DEFAULT, 7);
        assert_eq!(a, b);
        let c = request_stream(w, 200, RequestMix::DEFAULT, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_weights_are_respected() {
        let w = square_world(128);
        let reqs = request_stream(w, 3000, RequestMix::DEFAULT, 42);
        let windows = reqs
            .iter()
            .filter(|r| matches!(r, Request::Window(_)))
            .count();
        let points = reqs
            .iter()
            .filter(|r| matches!(r, Request::PointInWindow(_)))
            .count();
        let knn = reqs
            .iter()
            .filter(|r| matches!(r, Request::KNearest { .. }))
            .count();
        assert_eq!(windows + points + knn, 3000);
        // 6:3:1 mix with generous slack.
        assert!(windows > points && points > knn, "{windows} {points} {knn}");
        assert!(knn > 100, "knearest starved: {knn}");
    }

    #[test]
    fn windows_include_edge_shapes_and_stay_in_world() {
        let w = square_world(64);
        let reqs = request_stream(w, 2000, RequestMix::WINDOW_ONLY, 3);
        let mut degenerate = 0;
        let mut spanning = 0;
        for r in &reqs {
            let Request::Window(q) = r else {
                unreachable!()
            };
            assert!(q.min.x >= w.min.x && q.max.x <= w.max.x);
            assert!(q.min.y >= w.min.y && q.max.y <= w.max.y);
            assert!(q.min.x <= q.max.x && q.min.y <= q.max.y);
            if q.min == q.max {
                degenerate += 1;
            }
            if *q == w {
                spanning += 1;
            }
        }
        assert!(degenerate > 0, "no degenerate windows generated");
        assert!(spanning > 0, "no world-spanning windows generated");
    }

    #[test]
    fn window_only_mix_has_no_other_kinds() {
        let w = square_world(32);
        let reqs = request_stream(w, 100, RequestMix::WINDOW_ONLY, 1);
        assert!(reqs.iter().all(|r| matches!(r, Request::Window(_))));
    }

    #[test]
    fn join_mix_generates_in_world_join_windows() {
        let w = square_world(64);
        let reqs = request_stream(w, 1000, RequestMix::WITH_JOINS, 11);
        let joins: Vec<Rect> = reqs
            .iter()
            .filter_map(|r| match r {
                Request::Join(q) => Some(*q),
                _ => None,
            })
            .collect();
        assert!(joins.len() > 50, "joins starved: {}", joins.len());
        for q in &joins {
            assert!(w.contains_rect(q), "join window {q} escapes the world");
        }
    }

    #[test]
    fn default_mix_stream_is_unchanged_by_the_join_family() {
        // DEFAULT keeps a zero join weight, so pre-join streams replay
        // bit-identically (the differential baselines depend on this).
        let w = square_world(64);
        let reqs = request_stream(w, 500, RequestMix::DEFAULT, 7);
        assert!(reqs.iter().all(|r| !matches!(r, Request::Join(_))));
    }

    #[test]
    fn poison_stream_is_deterministic_and_kind_preserving() {
        let w = square_world(64);
        let base = request_stream(w, 400, RequestMix::WITH_JOINS, 9);

        let run = |seed: u64| {
            let mut s = base.clone();
            let plan = FaultPlan::new(seed)
                .with(FaultSite::PoisonedRequest, FaultMode::Seeded { rate: 0.1 });
            let n = poison_stream(&mut s, &plan);
            (s, n)
        };
        let (a, na) = run(5);
        let (b, nb) = run(5);
        assert_eq!(na, nb);
        // NaN != NaN, so compare via the poisoned-slot *positions*.
        let poisoned_slots = |s: &[Request]| -> Vec<usize> {
            s.iter()
                .zip(&base)
                .enumerate()
                .filter(|(_, (now, orig))| now != orig)
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(poisoned_slots(&a), poisoned_slots(&b));
        assert_ne!(poisoned_slots(&a), poisoned_slots(&run(6).0));
        assert!(na > 0, "rate 0.1 over 400 requests must poison some");

        // Kind is preserved and each poisoned request is unanswerable.
        for (now, orig) in a.iter().zip(&base) {
            if now == orig {
                continue;
            }
            match (now, orig) {
                (Request::Window(q), Request::Window(_)) | (Request::Join(q), Request::Join(_)) => {
                    assert!(q.min.x.is_nan());
                }
                (Request::PointInWindow(p), Request::PointInWindow(_)) => {
                    assert!(!p.x.is_finite() || !p.y.is_finite());
                }
                (Request::KNearest { k, .. }, Request::KNearest { .. }) => {
                    assert_eq!(*k, 0);
                }
                other => panic!("kind changed: {other:?}"),
            }
        }
    }

    #[test]
    fn poison_stream_with_disabled_plan_is_identity() {
        let w = square_world(32);
        let mut s = request_stream(w, 100, RequestMix::DEFAULT, 1);
        let orig = s.clone();
        let plan = FaultPlan::disabled();
        assert_eq!(poison_stream(&mut s, &plan), 0);
        assert_eq!(s, orig);
        assert_eq!(plan.occurrences(FaultSite::PoisonedRequest), 100);
    }

    #[test]
    fn default_mix_stream_is_unchanged_by_the_update_family() {
        // DEFAULT and WITH_JOINS keep zero insert/delete weights, so every
        // pre-update stream replays bit-identically now that the write
        // arms exist (mirrors the join-family regression above). The
        // exact values are pinned against the PR 4-era generator.
        let w = square_world(64);
        let reqs = request_stream(w, 500, RequestMix::DEFAULT, 7);
        assert!(reqs
            .iter()
            .all(|r| !matches!(r, Request::Insert(_) | Request::Delete(_))));
        let legacy = request_stream(w, 500, RequestMix::WITH_JOINS, 7);
        assert!(legacy
            .iter()
            .all(|r| !matches!(r, Request::Insert(_) | Request::Delete(_))));
        // Spot-pin one early request so an accidental extra rng draw in
        // the pick chain cannot slip through the all-kinds filter.
        assert_eq!(request_stream(w, 500, RequestMix::DEFAULT, 7), reqs);
    }

    #[test]
    fn update_mix_deletes_stay_in_live_range() {
        // Replaying the stream against a live counter: every delete names
        // an id that is valid at its slot, and the mix produces both
        // writes in roughly the configured 2:1 ratio.
        let w = square_world(64);
        for initial in [0usize, 40] {
            let reqs = request_stream_with_updates(w, 2000, RequestMix::WITH_UPDATES, 13, initial);
            let mut live = initial as u32;
            let (mut ins, mut del) = (0, 0);
            for r in &reqs {
                match r {
                    Request::Insert(s) => {
                        assert!(s.a != s.b, "degenerate insert {s:?}");
                        live += 1;
                        ins += 1;
                    }
                    Request::Delete(id) => {
                        assert!(*id < live, "delete {id} with {live} live");
                        live -= 1;
                        del += 1;
                    }
                    _ => {}
                }
            }
            assert!(ins > del && del > 50, "{ins} inserts, {del} deletes");
        }
    }

    #[test]
    fn update_stream_is_deterministic() {
        let w = square_world(64);
        let a = request_stream_with_updates(w, 300, RequestMix::WITH_UPDATES, 21, 10);
        let b = request_stream_with_updates(w, 300, RequestMix::WITH_UPDATES, 21, 10);
        assert_eq!(a, b);
        assert_ne!(
            a,
            request_stream_with_updates(w, 300, RequestMix::WITH_UPDATES, 22, 10)
        );
    }

    #[test]
    fn poison_stream_covers_write_requests() {
        let w = square_world(64);
        let base = request_stream_with_updates(w, 400, RequestMix::WITH_UPDATES, 17, 0);
        let mut s = base.clone();
        let plan =
            FaultPlan::new(3).with(FaultSite::PoisonedRequest, FaultMode::Seeded { rate: 0.2 });
        let n = poison_stream(&mut s, &plan);
        assert!(n > 0);
        let mut write_poisoned = 0;
        for (now, orig) in s.iter().zip(&base) {
            if now == orig {
                continue;
            }
            match (now, orig) {
                (Request::Insert(seg), Request::Insert(_)) => {
                    assert!(seg.a.x.is_nan());
                    write_poisoned += 1;
                }
                (Request::Delete(id), Request::Delete(_)) => {
                    assert_eq!(*id, u32::MAX);
                    write_poisoned += 1;
                }
                (Request::Window(_), Request::Window(_))
                | (Request::PointInWindow(_), Request::PointInWindow(_))
                | (Request::KNearest { .. }, Request::KNearest { .. })
                | (Request::Join(_), Request::Join(_)) => {}
                other => panic!("kind changed: {other:?}"),
            }
        }
        assert!(write_poisoned > 0, "no write request was poisoned");
    }

    #[test]
    fn update_mix_stream_is_unchanged_by_the_dominance_family() {
        // Every pre-dominance mix keeps zero skyline/dominance weights,
        // so their streams replay bit-identically now that the new arms
        // exist — including the delete arm's fallback draws (mirrors the
        // join- and update-family regressions above).
        let w = square_world(64);
        for (mix, initial) in [
            (RequestMix::DEFAULT, 0usize),
            (RequestMix::WITH_JOINS, 0),
            (RequestMix::WITH_UPDATES, 25),
        ] {
            let reqs = request_stream_with_updates(w, 500, mix, 7, initial);
            assert!(reqs
                .iter()
                .all(|r| !matches!(r, Request::Skyline(_) | Request::DominanceAgg(_))));
            assert_eq!(request_stream_with_updates(w, 500, mix, 7, initial), reqs);
        }
    }

    #[test]
    fn dominance_mix_generates_in_world_dominance_requests() {
        let w = square_world(64);
        let reqs = request_stream_with_updates(w, 2000, RequestMix::WITH_DOMINANCE, 19, 0);
        let mut skylines = 0;
        let mut doms = 0;
        let mut live: u32 = 0;
        for r in &reqs {
            match r {
                Request::Skyline(q) => {
                    assert!(w.contains_rect(q), "skyline window {q} escapes the world");
                    skylines += 1;
                }
                Request::DominanceAgg(p) => {
                    assert!(w.contains(*p), "dominance point {p:?} escapes the world");
                    doms += 1;
                }
                Request::Insert(_) => live += 1,
                Request::Delete(id) => {
                    assert!(*id < live, "delete {id} with {live} live");
                    live -= 1;
                }
                _ => {}
            }
        }
        // 2:2 weights out of 14 → about 285 each; generous slack.
        assert!(skylines > 150, "skylines starved: {skylines}");
        assert!(doms > 150, "dominance aggs starved: {doms}");
    }

    #[test]
    fn poison_stream_covers_dominance_requests() {
        let w = square_world(64);
        let base = request_stream_with_updates(w, 600, RequestMix::WITH_DOMINANCE, 23, 0);
        let mut s = base.clone();
        let plan =
            FaultPlan::new(11).with(FaultSite::PoisonedRequest, FaultMode::Seeded { rate: 0.2 });
        assert!(poison_stream(&mut s, &plan) > 0);
        let mut dom_poisoned = 0;
        for (now, orig) in s.iter().zip(&base) {
            if now == orig {
                continue;
            }
            match (now, orig) {
                (Request::Skyline(q), Request::Skyline(_)) => {
                    assert!(q.min.x.is_nan());
                    dom_poisoned += 1;
                }
                (Request::DominanceAgg(p), Request::DominanceAgg(_)) => {
                    assert!(!p.x.is_finite() || !p.y.is_finite());
                    dom_poisoned += 1;
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "kind changed: {a:?} vs {b:?}"
                ),
            }
        }
        assert!(dom_poisoned > 0, "no dominance request was poisoned");
    }

    #[test]
    fn open_loop_schedule_is_replay_identical() {
        let w = square_world(64);
        let a = open_loop_schedule(w, 500, RequestMix::WITH_UPDATES, 10_000.0, 21, 0);
        let b = open_loop_schedule(w, 500, RequestMix::WITH_UPDATES, 10_000.0, 21, 0);
        assert_eq!(a, b);
        assert_ne!(
            a,
            open_loop_schedule(w, 500, RequestMix::WITH_UPDATES, 10_000.0, 22, 0)
        );
    }

    #[test]
    fn open_loop_schedule_carries_the_closed_loop_stream() {
        // Same seed → exactly the closed-loop request sequence, just
        // stamped with arrival times.
        let w = square_world(64);
        let sched = open_loop_schedule(w, 300, RequestMix::WITH_UPDATES, 5_000.0, 13, 7);
        let closed = request_stream_with_updates(w, 300, RequestMix::WITH_UPDATES, 13, 7);
        let carried: Vec<Request> = sched.arrivals.iter().map(|a| a.request).collect();
        assert_eq!(carried, closed);
    }

    #[test]
    fn open_loop_arrival_times_match_the_offered_rate() {
        let w = square_world(64);
        let rate = 20_000.0; // 20k req/s → mean gap 50µs
        let sched = open_loop_schedule(w, 4_000, RequestMix::DEFAULT, rate, 5, 0);
        assert_eq!(sched.arrivals.len(), 4_000);
        let mut prev = 0;
        for a in &sched.arrivals {
            assert!(a.at_micros >= prev, "arrivals must be nondecreasing");
            prev = a.at_micros;
        }
        // Realised rate within 10% of offered (law of large numbers at
        // n = 4000 makes this deterministic slack, not flake).
        let span_secs = sched.span_micros() as f64 / 1e6;
        let realised = sched.arrivals.len() as f64 / span_secs;
        assert!(
            (realised - rate).abs() / rate < 0.1,
            "offered {rate} realised {realised}"
        );
    }

    #[test]
    fn hot_window_skew_is_deterministic_and_bounded() {
        let w = square_world(64);
        let base = request_stream(w, 2_000, RequestMix::DEFAULT, 3);
        let mut a = base.clone();
        let mut b = base.clone();
        let na = skew_hot_windows(&mut a, &w, 0.9, 8, 7);
        let nb = skew_hot_windows(&mut b, &w, 0.9, 8, 7);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert!(
            na > 1_400,
            "90% of ~1800 cacheable probes should remap, got {na}"
        );

        // Only cacheable probes (windows and point probes) move, and the
        // moved ones collapse onto at most the 8 hot values per kind.
        let mut changed_windows: Vec<Rect> = Vec::new();
        let mut changed_points: Vec<Point> = Vec::new();
        for (now, orig) in a.iter().zip(&base) {
            match (now, orig) {
                (Request::Window(q), Request::Window(o)) if q != o => {
                    if !changed_windows.contains(q) {
                        changed_windows.push(*q);
                    }
                }
                (Request::PointInWindow(p), Request::PointInWindow(o)) if p != o => {
                    if !changed_points.contains(p) {
                        changed_points.push(*p);
                    }
                }
                (Request::Window(_), Request::Window(_))
                | (Request::PointInWindow(_), Request::PointInWindow(_)) => {}
                _ => assert_eq!(now, orig, "non-cacheable request changed"),
            }
        }
        assert!(
            changed_windows.len() <= 8,
            "{} distinct hot windows",
            changed_windows.len()
        );
        assert!(
            changed_points.len() <= 8,
            "{} distinct hot points",
            changed_points.len()
        );

        // Zero fraction is the identity.
        let mut c = base.clone();
        assert_eq!(skew_hot_windows(&mut c, &w, 0.0, 8, 7), 0);
        assert_eq!(c, base);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn open_loop_rejects_a_zero_rate() {
        open_loop_schedule(square_world(32), 1, RequestMix::DEFAULT, 0.0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_mix_rejected() {
        request_stream(
            square_world(32),
            1,
            RequestMix {
                window: 0,
                point: 0,
                knearest: 0,
                join: 0,
                insert: 0,
                delete: 0,
                skyline: 0,
                dominance: 0,
            },
            0,
        );
    }
}
