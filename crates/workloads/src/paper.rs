//! The paper's running example: nine labeled line segments in an 8×8
//! world (paper Figs. 1, 3, 4, 5).
//!
//! The paper never prints coordinates, so this is a *reconstruction*: the
//! coordinates below reproduce every structural event the paper describes
//! for its dataset:
//!
//! * segments `c`, `d` and `i` share a common endpoint (Fig. 1 discussion);
//! * segment `i` spans the map diagonally, crossing both root split axes
//!   (it is cloned during the first PM₁ subdivision round, Fig. 31, along
//!   with `a` and `b`);
//! * with bucket capacity 2 and maximal height 3, the region around the
//!   shared `c`/`d`/`i` endpoint keeps three incident segments at every
//!   depth, so it subdivides to the maximal depth and remains over
//!   capacity there (Fig. 4's node 9 and Fig. 38);
//! * an order (1,3) R-tree on the nine segments terminates with a
//!   three-level structure (Figs. 39–44).

use dp_geom::{LineSeg, Rect};

/// Labels of the paper's nine segments, in insertion order.
pub const PAPER_LABELS: [char; 9] = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i'];

/// The 8×8 world of the paper's example (maximal quadtree height 3, i.e.
/// 1×1 cells at the deepest level — Fig. 4 uses exactly this bound).
pub fn paper_world() -> Rect {
    Rect::from_coords(0.0, 0.0, 8.0, 8.0)
}

/// The reconstructed nine-segment dataset. Index `k` is the segment
/// labeled `PAPER_LABELS[k]`.
pub fn paper_dataset() -> Vec<LineSeg> {
    vec![
        // a: upper area, crosses the vertical centre line x = 4. Kept
        // above segment i's descent (a polygonal map's edges may meet
        // only at shared vertices — a non-vertex crossing would make the
        // PM1 criterion unsatisfiable).
        LineSeg::from_coords(2.0, 6.0, 5.0, 6.0),
        // b: right side, crosses the horizontal centre line y = 4.
        LineSeg::from_coords(5.0, 7.0, 7.0, 3.0),
        // c: NW, one endpoint shared with d and i at (1, 6).
        LineSeg::from_coords(1.0, 6.0, 0.0, 7.0),
        // d: NW, shares the (1, 6) vertex.
        LineSeg::from_coords(1.0, 6.0, 3.0, 7.0),
        // e: SW.
        LineSeg::from_coords(0.0, 2.0, 2.0, 1.0),
        // f: SW, vertical.
        LineSeg::from_coords(3.0, 3.0, 3.0, 1.0),
        // g: SE, horizontal.
        LineSeg::from_coords(5.0, 1.0, 7.0, 1.0),
        // h: SE.
        LineSeg::from_coords(6.0, 3.0, 7.0, 2.0),
        // i: long diagonal from the shared (1, 6) vertex into the SE
        // quadrant; crosses both root split axes.
        LineSeg::from_coords(1.0, 6.0, 6.0, 2.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geom::{seg_in_block, Point};

    #[test]
    fn nine_segments_inside_world() {
        let world = paper_world();
        let segs = paper_dataset();
        assert_eq!(segs.len(), 9);
        for (k, s) in segs.iter().enumerate() {
            assert!(
                world.contains_half_open(s.a) && world.contains_half_open(s.b),
                "segment {} endpoints must be strictly inside the world",
                PAPER_LABELS[k]
            );
            assert!(!s.is_degenerate());
        }
    }

    #[test]
    fn c_d_i_share_a_vertex() {
        let segs = paper_dataset();
        let shared = Point::new(1.0, 6.0);
        for &k in &[2usize, 3, 8] {
            let s = segs[k];
            assert!(
                s.a == shared || s.b == shared,
                "segment {} must touch the shared vertex",
                PAPER_LABELS[k]
            );
        }
    }

    #[test]
    fn a_b_i_cross_root_split_axes() {
        // The paper notes a, b and i are cloned during the root split
        // (Fig. 31) because each crosses one of the centre axes.
        let world = paper_world();
        let quads = world.quadrants();
        let segs = paper_dataset();
        let blocks_of = |s: &LineSeg| (0..4).filter(|&q| seg_in_block(s, &quads[q])).count();
        assert!(blocks_of(&segs[0]) >= 2, "a crosses a split axis");
        assert!(blocks_of(&segs[1]) >= 2, "b crosses a split axis");
        assert!(blocks_of(&segs[8]) >= 2, "i crosses a split axis");
        // And the purely quadrant-local segments are not cloned.
        for &k in &[2usize, 3, 4, 5, 6, 7] {
            assert_eq!(
                blocks_of(&segs[k]),
                1,
                "segment {} stays in one quadrant",
                PAPER_LABELS[k]
            );
        }
    }

    #[test]
    fn all_vertices_distinct_except_shared() {
        // PM₁ termination requires distinct vertices to be separable; the
        // only coincident endpoints are the deliberate shared vertex.
        let segs = paper_dataset();
        let mut pts: Vec<Point> = segs.iter().flat_map(|s| [s.a, s.b]).collect();
        pts.sort_by(|p, q| p.lex_cmp(q));
        let shared = Point::new(1.0, 6.0);
        let mut dup_count = 0;
        for w in pts.windows(2) {
            if w[0] == w[1] {
                assert_eq!(w[0], shared, "unexpected coincident vertex {}", w[0]);
                dup_count += 1;
            }
        }
        assert_eq!(dup_count, 2, "the shared vertex appears exactly 3 times");
    }
}
