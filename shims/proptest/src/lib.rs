//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest used by the workspace's property
//! tests:
//!
//! * `proptest! { ... }` (with optional `#![proptest_config(...)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * `Strategy` with `prop_map`, `prop_flat_map`, `prop_filter`,
//! * range strategies, tuple strategies, `any::<T>()`,
//!   `prop::collection::vec`, and `Just`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case
//! reports its case number, values (via the assertion message), and the
//! deterministic seed. Runs are fully deterministic: the RNG stream for
//! a test is derived from the test's name and the `PROPTEST_SEED`
//! environment variable (default 0), and the case count from
//! `PROPTEST_CASES` (default 64, overridable per-test with
//! `ProptestConfig::with_cases`). Pinning both in CI makes failures
//! reproducible by re-running the same test binary.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG whose stream is a pure function of the test name and the
        /// `PROPTEST_SEED` environment variable.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let env_seed: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            TestRng {
                inner: StdRng::seed_from_u64(h ^ env_seed.rotate_left(32)),
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Mutable access to the underlying `rand` generator, so
        /// strategies can reuse its `gen_range` implementations.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    /// A failed property-test case (produced by the `prop_assert!`
    /// family); carries the rendered failure message.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// An explicit failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Proptest-compatible alias for [`TestCaseError::fail`].
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// How many times `prop_filter` retries before giving up.
    const FILTER_RETRIES: usize = 10_000;

    /// A generator of values of type `Self::Value`.
    ///
    /// Stand-in for proptest's `Strategy`; generation is a single draw
    /// (no shrink tree).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { base: self, f }
        }

        /// Feeds generated values into a second-stage strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMapStrategy { base: self, f }
        }

        /// Rejects generated values failing the predicate, retrying with
        /// fresh draws.
        ///
        /// # Panics
        ///
        /// Panics if the predicate rejects 10 000 consecutive draws.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> FilterStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            FilterStrategy {
                base: self,
                reason,
                f,
            }
        }

        /// Boxes the strategy (API-compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct MapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let stage2 = (self.f)(self.base.generate(rng));
            stage2.generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct FilterStrategy<S, F> {
        base: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for FilterStrategy<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter: predicate `{}` rejected {} consecutive draws",
                self.reason, FILTER_RETRIES
            );
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }

    /// Uniformly selects one of the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: no options");
        Select { options }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible length range for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{} (seed env PROPTEST_SEED={}):\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            ::std::env::var("PROPTEST_SEED").unwrap_or_else(|_| "0".into()),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Drop-in for `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0i64..100, 3..10);
        let mut r1 = crate::test_runner::TestRng::deterministic("fixed");
        let mut r2 = crate::test_runner::TestRng::deterministic("fixed");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i64..50, y in 1usize..9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(
            v in prop::collection::vec(0u32..100, 1..20)
                .prop_filter("nonempty", |v| !v.is_empty())
                .prop_map(|mut v| { v.sort_unstable(); v })
        ) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn flat_map_links_stages((n, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0i32..10, n..n + 1))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn tuples_generate(t in (0i32..4, 0i32..4, 0i32..4, 0i32..4)) {
            let (a, b, c, d) = t;
            for v in [a, b, c, d] {
                prop_assert!((0..4).contains(&v));
            }
        }
    }
}
