//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.8.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the rand API the workspace uses: `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen_range` (half-open and inclusive integer/float ranges) and
//! `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64. It does
//! **not** reproduce the real `StdRng`'s (ChaCha12) stream — the
//! workspace never asserts specific values, only determinism given a
//! seed, which this provides: the same seed always yields the same
//! sequence, on every platform.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (the only entry point the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 high bits give a uniform f64 in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `0..n` via Lemire-style rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the real
    /// ChaCha12-based `StdRng`; same determinism guarantee, different
    /// stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut words = [0u64; 4];
            for (i, w) in words.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            if words.iter().all(|&w| w == 0) {
                return StdRng::from_u64(0);
            }
            StdRng { s: words }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Drop-in for `rand::prelude::*`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1000)).collect();
        let diff: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(3usize..17);
            assert!((3..17).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
