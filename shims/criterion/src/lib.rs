//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the criterion API the workspace's benches
//! use: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput::Elements`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a warm-up period, the
//! closure is timed over as many iterations as fit in the measurement
//! window and the mean wall-clock per iteration is printed (plus
//! element throughput when configured). There are no statistics, plots,
//! or saved baselines. When invoked with `--test` (as `cargo test` does
//! for `harness = false` bench targets), every benchmark runs exactly
//! one iteration so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    measurement_time: Duration,
    warm_up_time: Duration,
    quick: bool,
}

impl Bencher {
    /// Times `routine`, first warming up, then iterating until the
    /// measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            std::hint::black_box(routine());
            self.iters_done = 1;
            self.total = Duration::from_nanos(1);
            return;
        }
        // Warm-up: run until the warm-up window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time {
                self.iters_done = iters;
                self.total = elapsed;
                return;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters_done as u32
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-driven here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            quick: self.criterion.quick,
        };
        routine(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmarks `routine` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            quick: self.criterion.quick,
        };
        routine(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if self.criterion.quick {
            println!("{}/{}: ok (quick mode)", self.name, id.name);
            return;
        }
        let mean = b.mean();
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  thrpt: {} elem/s", format_si(per_sec))
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  thrpt: {}B/s", format_si(per_sec))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: time: [{} per iter, {} iters]{}",
            self.name,
            id.name,
            format_duration(mean),
            b.iters_done,
            thrpt
        );
    }

    /// Ends the group (printing happens per-benchmark).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion { quick }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from_parameter("default"), routine);
        self
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.3} ")
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = <$crate::Criterion as ::std::default::Default>::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
