//! The persistent worker pool behind every terminal operation.
//!
//! Earlier revisions of the shim spawned `std::thread::scope` workers on
//! every parallel call, which cost a `clone(2)`/`join` pair per worker per
//! primitive — the dominant overhead for the scan-model machine, whose
//! primitives run for tens of microseconds. This module keeps one set of
//! long-lived workers (spawned lazily on first use) that drain a shared
//! queue of indexed jobs, so a parallel call is two mutex operations and a
//! condvar wake instead of `n` thread spawns.
//!
//! The public surface is [`run_indexed`]: run `f(0..jobs)` across the
//! workers and block until every index completed. Lifetimes are erased by
//! passing the closure through a raw pointer plus a monomorphized
//! trampoline; soundness comes from the latch — `run_indexed` does not
//! return until every job referencing the closure has finished, so the
//! borrow outlives all uses.
//!
//! Nested parallelism cannot deadlock: a submitter never parks while the
//! queue is non-empty — it *helps*, draining jobs (its own or another
//! submitter's) until its latch opens. Worker panics are caught per job,
//! carried through the latch, and resumed on the submitting thread, which
//! matches `std::thread::scope` semantics closely enough for the
//! workspace's `should_panic` tests.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One indexed unit of work: call `call(ctx, index)`, then open the latch.
struct Job {
    call: unsafe fn(*const (), usize),
    ctx: *const (),
    index: usize,
    latch: *const Latch,
    /// Whether the submitting context was armed for fault injection (see
    /// [`set_fault_hook`]); inherited by nested submissions made while
    /// this job runs.
    armed: bool,
}

// ----------------------------------------------------------------------
// Fault-injection hook
// ----------------------------------------------------------------------
//
// Test harnesses above this shim (the scan-model fault plan) need a way to
// make pool workers die mid-job, deterministically, without the shim
// depending on any higher crate. The contract: a process-global hook
// closure, called immediately before each job body, but only for jobs
// whose submitting context was *armed*. Arming is a thread-local flag that
// jobs inherit — a worker running an armed job is itself armed for the
// nested submissions that job makes — so one test can inject faults into
// its own (possibly deeply nested) parallel work without touching jobs
// submitted by unrelated threads of the same process.

static HOOK_SET: AtomicBool = AtomicBool::new(false);

type FaultHook = Arc<dyn Fn() + Send + Sync>;

fn hook_slot() -> &'static Mutex<Option<FaultHook>> {
    static HOOK: OnceLock<Mutex<Option<FaultHook>>> = OnceLock::new();
    HOOK.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Installs the process-global fault hook. The hook runs right before
/// every job body submitted from an armed context (see
/// [`arm_fault_hook`]); a panic it raises is indistinguishable from the
/// job itself panicking. Passing `None` uninstalls.
pub fn set_fault_hook(hook: Option<Arc<dyn Fn() + Send + Sync>>) {
    let mut slot = hook_slot().lock().expect("fault hook poisoned");
    HOOK_SET.store(hook.is_some(), Ordering::SeqCst);
    *slot = hook;
}

/// Arms the current thread for fault injection until the guard drops.
/// Jobs submitted while armed (and jobs they submit transitively) run the
/// installed fault hook before their body.
pub fn arm_fault_hook() -> FaultArmGuard {
    let prev = ARMED.with(|a| a.replace(true));
    FaultArmGuard { prev }
}

/// RAII guard of [`arm_fault_hook`]; restores the previous arming state.
#[must_use = "dropping the guard disarms the thread"]
pub struct FaultArmGuard {
    prev: bool,
}

impl Drop for FaultArmGuard {
    fn drop(&mut self) {
        ARMED.with(|a| a.set(self.prev));
    }
}

fn current_armed() -> bool {
    ARMED.with(|a| a.get())
}

/// Consults the installed fault hook exactly as a pool job entry would:
/// no-op unless a hook is installed and the current thread is armed.
/// Kernels whose single-worker fast path runs inline (no pool job) call
/// this at entry so fault-injection coverage matches the pooled path.
pub fn fault_checkpoint() {
    maybe_fire_hook();
}

/// Runs the installed hook if the current thread is armed. Cheap when no
/// hook is installed (one relaxed atomic load).
fn maybe_fire_hook() {
    if HOOK_SET.load(Ordering::Relaxed) && current_armed() {
        let hook = hook_slot().lock().expect("fault hook poisoned").clone();
        if let Some(hook) = hook {
            hook();
        }
    }
}

// SAFETY: `ctx` points at a `Sync` closure and `latch` at a latch that the
// submitting thread keeps alive until `remaining` reaches zero; both are
// only dereferenced while the submitter is blocked in `run_indexed`.
unsafe impl Send for Job {}

/// Completion latch shared by one `run_indexed` call's jobs.
struct Latch {
    state: Mutex<LatchState>,
    cvar: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// Monomorphized trampoline: recover the closure type and run one index.
unsafe fn call_one<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
    (*(ctx as *const F))(index);
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    cvar: Condvar,
    threads: usize,
}

impl Pool {
    fn execute(&self, job: Job) {
        // Inherit the submitter's arming state for the duration of the
        // job, so nested submissions from its body are stamped correctly.
        let prev_armed = ARMED.with(|a| a.replace(job.armed));
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            if job.armed {
                maybe_fire_hook();
            }
            (job.call)(job.ctx, job.index)
        }));
        ARMED.with(|a| a.set(prev_armed));
        // SAFETY: the submitter keeps the latch alive until `remaining`
        // hits zero; we hold a not-yet-counted-down reference.
        let latch = unsafe { &*job.latch };
        let mut st = latch.state.lock().expect("pool latch poisoned");
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            // Notify while holding the lock: the submitter cannot observe
            // `remaining == 0` (and free the latch) before we are done
            // touching it.
            latch.cvar.notify_all();
        }
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("pool queue poisoned").pop_front()
    }

    fn worker(&'static self) {
        let mut queue = self.queue.lock().expect("pool queue poisoned");
        loop {
            match queue.pop_front() {
                Some(job) => {
                    drop(queue);
                    self.execute(job);
                    queue = self.queue.lock().expect("pool queue poisoned");
                }
                None => {
                    queue = self.cvar.wait(queue).expect("pool queue poisoned");
                }
            }
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static SPAWN: OnceLock<()> = OnceLock::new();
    let p = POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        cvar: Condvar::new(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    });
    // Spawn workers outside the OnceLock initializer (a worker touching
    // POOL while it is still initializing would deadlock).
    SPAWN.get_or_init(|| {
        for i in 0..p.threads {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || pool().worker())
                .expect("rayon-shim: failed to spawn pool worker");
        }
    });
    p
}

/// Number of threads the persistent pool runs.
pub fn pool_threads() -> usize {
    pool().threads
}

/// Runs `f(i)` for every `i in 0..jobs` across the persistent pool and
/// returns when all of them finished. The submitting thread helps drain
/// the queue, so nested `run_indexed` calls cannot deadlock. If any job
/// panics, the (first) panic is resumed here after all jobs complete.
pub fn run_indexed<F: Fn(usize) + Sync>(jobs: usize, f: &F) {
    if jobs == 0 {
        return;
    }
    let p = pool();
    let armed = current_armed();
    if jobs == 1 || p.threads <= 1 {
        for i in 0..jobs {
            if armed {
                maybe_fire_hook();
            }
            f(i);
        }
        return;
    }
    let latch = Latch {
        state: Mutex::new(LatchState {
            remaining: jobs,
            panic: None,
        }),
        cvar: Condvar::new(),
    };
    {
        let mut queue = p.queue.lock().expect("pool queue poisoned");
        for index in 0..jobs {
            queue.push_back(Job {
                call: call_one::<F>,
                ctx: f as *const F as *const (),
                index,
                latch: &latch as *const Latch,
                armed,
            });
        }
        p.cvar.notify_all();
    }
    // Help: drain queued jobs (ours or anyone's) while waiting.
    while let Some(job) = p.try_pop() {
        p.execute(job);
    }
    let mut st = latch.state.lock().expect("pool latch poisoned");
    while st.remaining > 0 {
        st = latch.cvar.wait(st).expect("pool latch poisoned");
    }
    if let Some(panic) = st.panic.take() {
        drop(st);
        resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let total = AtomicUsize::new(0);
        run_indexed(8, &|_| {
            run_indexed(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn repeated_use_reuses_workers() {
        // Smoke test that thousands of rounds through the pool work; the
        // per-call overhead being pool-bound (not spawn-bound) is what the
        // scan-model threshold benchmarks measure.
        let total = AtomicUsize::new(0);
        for _ in 0..2000 {
            run_indexed(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 8000);
    }

    /// Serializes the tests that install the process-global hook.
    fn hook_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn fault_hook_fires_only_for_armed_submitters() {
        let _serial = hook_test_lock();
        // One installed hook; only the armed submission sees it, and the
        // arming is scoped to the guard's lifetime.
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        set_fault_hook(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        })));

        run_indexed(4, &|_| {});
        assert_eq!(fired.load(Ordering::Relaxed), 0, "unarmed jobs fired");

        {
            let _arm = arm_fault_hook();
            run_indexed(4, &|_| {});
        }
        let armed_fires = fired.load(Ordering::Relaxed);
        assert!(armed_fires >= 1, "armed jobs never fired");

        // Disarmed again after the guard dropped.
        run_indexed(4, &|_| {});
        assert_eq!(fired.load(Ordering::Relaxed), armed_fires);

        set_fault_hook(None);
        {
            let _arm = arm_fault_hook();
            run_indexed(4, &|_| {});
        }
        assert_eq!(
            fired.load(Ordering::Relaxed),
            armed_fires,
            "uninstalled hook fired"
        );
    }

    #[test]
    fn armed_jobs_inherit_to_nested_submissions() {
        let _serial = hook_test_lock();
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        set_fault_hook(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        })));
        {
            let _arm = arm_fault_hook();
            run_indexed(2, &|_| {
                // Nested submission happens on a pool worker (or the
                // helping submitter); either way it must stay armed.
                run_indexed(2, &|_| {});
            });
        }
        set_fault_hook(None);
        // 2 outer + 2×2 nested = 6 armed jobs minimum (the exact split
        // between queue and inline paths varies with thread count).
        assert!(
            fired.load(Ordering::Relaxed) >= 2,
            "nested jobs lost the arming"
        );
    }

    #[test]
    fn panic_in_job_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(4, &|i| {
                if i == 2 {
                    panic!("boom in job");
                }
            });
        });
        assert!(caught.is_err());
        // The pool stays usable afterwards.
        let n = AtomicUsize::new(0);
        run_indexed(3, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 3);
    }
}
