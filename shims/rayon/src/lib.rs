//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the *subset* of rayon's API that the workspace actually
//! uses, with the same names and the same observable semantics:
//!
//! * `slice.par_iter()`, `range.into_par_iter()`, `.map`, `.zip`,
//!   `.enumerate`, `.for_each`, `.collect::<Vec<_>>()`
//! * `slice.par_chunks_mut(n)` (+ `.enumerate().for_each(...)`)
//! * `slice.par_sort_unstable_by(cmp)`
//! * `join`, `scope`, `current_num_threads`
//!
//! Execution is genuinely parallel: terminal operations split the index
//! space into contiguous blocks and run them on a **persistent worker
//! pool** (see [`pool`]) — long-lived threads draining a shared job
//! queue, spawned once on first use. A parallel call therefore costs a
//! queue push plus a condvar wake rather than per-call thread spawns,
//! which is what lets `scan_model::Machine` run a lower `par_threshold`
//! than the earlier `std::thread::scope`-per-call design.
//!
//! Everything here is deterministic in *values* (outputs are written to
//! their own index slots), matching the workspace's bit-identical
//! backend-equivalence tests.

pub mod pool;

pub use pool::{arm_fault_hook, fault_checkpoint, set_fault_hook, FaultArmGuard};

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads terminal operations will use. Cached after
/// the first call — querying `available_parallelism` costs a syscall on
/// some platforms, and the pool size is fixed for the process lifetime.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim: join task panicked");
        (ra, rb)
    })
}

/// A minimal fork-join scope: `scope(|s| { s.spawn(...); ... })` blocks
/// until every spawned task finishes.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    })
}

/// Handle passed to [`scope`] callbacks.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that must finish before the scope returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Splits `0..n` into at most `current_num_threads()` contiguous blocks
/// and runs `body(lo, hi)` for each block on the persistent pool.
fn parallel_blocks<F>(n: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let nt = current_num_threads().min(n).max(1);
    if nt == 1 {
        body(0, n);
        return;
    }
    let blk = n.div_ceil(nt);
    let nblocks = n.div_ceil(blk);
    pool::run_indexed(nblocks, &|t| {
        let lo = t * blk;
        let hi = ((t + 1) * blk).min(n);
        body(lo, hi);
    });
}

/// Walks `0..n` in fixed-size cache blocks of `block` elements, calling
/// `body(lo, hi)` once per block. Blocks are dealt to workers as
/// contiguous *ranges of blocks* so each worker touches a contiguous
/// span of the data across the reduce and apply phases of a blocked
/// scan — work stays thread-local instead of round-robining blocks.
///
/// With one worker (or one block) the whole walk runs inline on the
/// caller, block by block, with no pool round-trip.
pub fn for_each_block<F>(n: usize, block: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    let nt = current_num_threads().min(nblocks).max(1);
    if nt == 1 {
        // Same fault-injection semantics as the pooled path: one hook
        // consultation for the (single) worker's range.
        pool::fault_checkpoint();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + block).min(n);
            body(lo, hi);
            lo = hi;
        }
        return;
    }
    let per = nblocks.div_ceil(nt);
    pool::run_indexed(nt, &|t| {
        let first = t * per;
        let last = ((t + 1) * per).min(nblocks);
        for b in first..last {
            let lo = b * block;
            let hi = (lo + block).min(n);
            body(lo, hi);
        }
    });
}

/// Raw-pointer wrapper so disjoint writes can cross thread boundaries.
/// Accessed through [`SendPtr::get`] so closures capture the wrapper
/// (which is `Sync`), not the raw pointer field (which is not).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// An indexed parallel source: random access by lane, known length.
/// This is the shim's analogue of rayon's `IndexedParallelIterator`.
pub trait ParallelIterator: Sized + Sync {
    /// The per-lane item.
    type Item: Send;

    /// Number of lanes.
    fn len(&self) -> usize;

    /// `true` when the source has no lanes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item for lane `i` (`i < self.len()`).
    fn get(&self, i: usize) -> Self::Item;

    /// Lane-wise transformation.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs lanes with an equal-length source (truncates to the shorter,
    /// as rayon does).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs each lane with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs `f` on every lane across the worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.len();
        parallel_blocks(n, |lo, hi| {
            for i in lo..hi {
                f(self.get(i));
            }
        });
    }

    /// Collects all lanes into a `Vec`, each lane writing its own slot.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Collects all lanes into an existing `Vec`, reusing its allocation
    /// when the capacity suffices (rayon's `collect_into_vec`).
    fn collect_into_vec(self, target: &mut Vec<Self::Item>) {
        let n = self.len();
        target.clear();
        target.reserve(n);
        let ptr = SendPtr(target.as_mut_ptr());
        parallel_blocks(n, |lo, hi| {
            let base = ptr.get();
            for i in lo..hi {
                // SAFETY: each lane writes exactly its own slot inside the
                // reserved capacity; blocks are disjoint; the vec was
                // cleared so no live element is overwritten.
                unsafe { base.add(i).write(self.get(i)) };
            }
        });
        // SAFETY: all n slots were initialized above.
        unsafe { target.set_len(n) };
    }
}

/// Collection types constructible from a parallel source (`Vec` only).
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection by evaluating every lane.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let n = iter.len();
        let mut out: Vec<T> = Vec::with_capacity(n);
        let ptr = SendPtr(out.as_mut_ptr());
        parallel_blocks(n, |lo, hi| {
            let base = ptr.get();
            for i in lo..hi {
                // SAFETY: each lane writes exactly its own slot inside the
                // allocated capacity; blocks are disjoint.
                unsafe { base.add(i).write(iter.get(i)) };
            }
        });
        // SAFETY: all n slots were initialized above.
        unsafe { out.set_len(n) };
        out
    }
}

/// Source over a `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Source over a shared slice, yielding `&T` like rayon's `par_iter`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Lane-wise `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, i: usize) -> U {
        (self.f)(self.base.get(i))
    }
}

/// Lane-wise `zip` adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn get(&self, i: usize) -> Self::Item {
        (self.a.get(i), self.b.get(i))
    }
}

/// Lane-wise `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, i: usize) -> Self::Item {
        (i, self.base.get(i))
    }
}

/// Conversion into a parallel source (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The resulting source type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The per-lane item.
    type Item: Send;
    /// Converts `self` into a parallel source.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator of `&T`.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// `par_chunks_mut` / `par_sort_unstable_by` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Disjoint mutable chunks of length `size` (last may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;

    /// Unstable sort by comparator, parallel over chunk pre-sorts.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
        T: Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        ChunksMut { slice: self, size }
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
        T: Sync,
    {
        par_merge_sort(self, &cmp);
    }
}

/// Chunk-sorts in parallel, then merges pairs of sorted runs until one
/// run covers the slice. `T` is moved through a scratch buffer; the
/// result is identical to `sort_unstable_by` up to stability (which
/// `_unstable` does not promise).
fn par_merge_sort<T: Send + Sync, F>(slice: &mut [T], cmp: &F)
where
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = slice.len();
    let nt = current_num_threads();
    if n < 4096 || nt <= 1 {
        slice.sort_unstable_by(cmp);
        return;
    }
    let runs = nt.next_power_of_two().min(64);
    let blk = n.div_ceil(runs);

    // Phase 1: sort each block in parallel on the pool. Blocks are
    // addressed through a raw base pointer because the pool's `Fn`
    // closures cannot each own a disjoint `&mut` chunk.
    {
        let base = SendPtr(slice.as_mut_ptr());
        let nblocks = n.div_ceil(blk);
        pool::run_indexed(nblocks, &|t| {
            let lo = t * blk;
            let hi = ((t + 1) * blk).min(n);
            // SAFETY: [lo, hi) ranges are disjoint across jobs and within
            // the slice bounds.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            chunk.sort_unstable_by(cmp);
        });
    }

    // Phase 2: merge neighbouring runs, doubling run length each pass.
    // `buf` stays logically empty (len 0) throughout; it is used purely as
    // spare capacity addressed through raw pointers, so no element is ever
    // dropped from it even if a comparator panics (leak-on-panic at worst).
    let mut width = blk;
    let mut buf: Vec<T> = Vec::with_capacity(n);
    while width < n {
        {
            let buf_ptr = SendPtr(buf.as_mut_ptr());
            let src = &*slice;
            let pairs = n.div_ceil(2 * width);
            pool::run_indexed(pairs, &|p| {
                let lo = p * 2 * width;
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                // SAFETY: pairs [lo, hi) are disjoint across jobs and lie
                // within buf's capacity.
                unsafe { merge_into(src, lo, mid, hi, buf_ptr.get(), cmp) };
            });
        }
        // Move the merged pass back over the input. Each element has now
        // been bitwise-copied slice -> buf -> slice exactly once, so the
        // copies in `buf` are dead and must not be dropped (len is 0).
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), slice.as_mut_ptr(), n);
        }
        width *= 2;
    }
}

/// Merges sorted `src[lo..mid]` and `src[mid..hi]` into `dst[lo..hi]`.
///
/// # Safety
///
/// `dst` must have capacity for indices `lo..hi`, and no other task may
/// touch that range concurrently. Elements are copied bitwise; the
/// caller must treat the copies in `dst` as the live values afterwards.
unsafe fn merge_into<T, F>(src: &[T], lo: usize, mid: usize, hi: usize, dst: *mut T, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut a = lo;
    let mut b = mid;
    let mut o = lo;
    while a < mid && b < hi {
        let take_a = cmp(&src[a], &src[b]) != Ordering::Greater;
        let i = if take_a { &mut a } else { &mut b };
        unsafe { dst.add(o).write(std::ptr::read(&src[*i])) };
        *i += 1;
        o += 1;
    }
    while a < mid {
        unsafe { dst.add(o).write(std::ptr::read(&src[a])) };
        a += 1;
        o += 1;
    }
    while b < hi {
        unsafe { dst.add(o).write(std::ptr::read(&src[b])) };
        b += 1;
        o += 1;
    }
}

/// Mutable-chunks source; only `enumerate().for_each(...)` is supported,
/// which is the pattern the workspace uses.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Runs `f` on every chunk across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated mutable-chunks source.
pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` across the pool workers. Each
    /// job reconstitutes its disjoint chunk from a raw base pointer, so
    /// no worklist mutex or chunk pre-collection is needed.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let size = self.size;
        let nchunks = n.div_ceil(size);
        let base = SendPtr(self.slice.as_mut_ptr());
        pool::run_indexed(nchunks, &|c| {
            let lo = c * size;
            let hi = (lo + size).min(n);
            // SAFETY: chunk ranges are disjoint across jobs and within the
            // slice bounds; the slice outlives `run_indexed`.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            f((c, chunk));
        });
    }
}

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn slice_zip_map_collect() {
        let a: Vec<i64> = (0..5000).map(|i| i as i64).collect();
        let b: Vec<i64> = (0..5000).map(|i| 2 * i as i64).collect();
        let got: Vec<i64> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x + y)
            .collect();
        let want: Vec<i64> = (0..5000).map(|i| 3 * i as i64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut v = vec![0usize; 10_000];
        v.par_chunks_mut(128).enumerate().for_each(|(b, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = b * 128 + j;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn collect_into_vec_reuses_allocation() {
        let mut out: Vec<usize> = Vec::with_capacity(10_000);
        out.push(7); // stale content must be discarded
        let cap_before = out.capacity();
        (0..10_000usize)
            .into_par_iter()
            .map(|i| i + 1)
            .collect_into_vec(&mut out);
        assert_eq!(out.capacity(), cap_before);
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn for_each_runs_every_lane() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..12_345).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 12_345);
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut a: Vec<u64> = (0..50_000)
            .map(|i: u64| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17))
            .collect();
        let mut b = a.clone();
        a.par_sort_unstable_by(|x, y| x.cmp(y));
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn scope_spawns_and_waits() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }
}
