//! Index shootout: build every structure in the workspace — the three
//! data-parallel builds and their sequential baselines — over the same
//! road-map workload, then compare construction effort, structure shape
//! and query behaviour (the disjoint-quadtree vs overlapping-R-tree
//! trade-off of the paper's introduction).
//!
//! Run with: `cargo run --release --example index_shootout`

use dp_spatial_suite::geom::Rect;
use dp_spatial_suite::seq;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::pm_family::{build_pm2, build_pm3};
use dp_spatial_suite::spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial_suite::spatial::rtree::{build_rtree, pack_rtree_hilbert};
use dp_spatial_suite::spatial::stats::measure_build;
use dp_spatial_suite::workloads::road_network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scan_model::Machine;
use std::time::Instant;

fn main() {
    let machine = Machine::parallel();
    let size = 2048u32;
    let data = road_network(40, size, 7);
    let n = data.len();
    println!("== index shootout over {n} road segments ==\n");

    // Random query windows (2% of the world per side).
    let mut rng = StdRng::seed_from_u64(99);
    let win = (size as f64) * 0.02;
    let queries: Vec<Rect> = (0..200)
        .map(|_| {
            let x = rng.gen_range(0.0..(size as f64 - win));
            let y = rng.gen_range(0.0..(size as f64 - win));
            Rect::from_coords(x, y, x + win, y + win)
        })
        .collect();

    println!(
        "{:<28} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "structure", "build", "nodes", "height", "entries", "query(us)"
    );

    let time_queries = |f: &dyn Fn(&Rect) -> Vec<u32>| -> (f64, usize) {
        let t = Instant::now();
        let mut hits = 0usize;
        for q in &queries {
            hits += f(q).len();
        }
        (t.elapsed().as_micros() as f64 / queries.len() as f64, hits)
    };

    // Data-parallel builds.
    let (pm1, r) = measure_build(&machine, || build_pm1(&machine, data.world, &data.segs, 11));
    let (qt, hits_ref) = time_queries(&|q| pm1.window_query(q, &data.segs));
    let s = pm1.stats();
    println!(
        "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}",
        "dp PM1 quadtree", r.elapsed, s.nodes, s.height, s.entries, qt
    );

    for (label, build) in [
        (
            "dp PM2 quadtree",
            build_pm2 as fn(&Machine, _, &[_], _) -> _,
        ),
        ("dp PM3 quadtree", build_pm3),
    ] {
        let (t, r) = measure_build(&machine, || build(&machine, data.world, &data.segs, 11));
        let (qt, hits) = time_queries(&|q| t.window_query(q, &data.segs));
        assert_eq!(hits, hits_ref);
        let s = t.stats();
        println!(
            "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}",
            label, r.elapsed, s.nodes, s.height, s.entries, qt
        );
    }

    let (bpmr, r) = measure_build(&machine, || {
        build_bucket_pmr(&machine, data.world, &data.segs, 8, 11)
    });
    let (qt, hits) = time_queries(&|q| bpmr.window_query(q, &data.segs));
    assert_eq!(hits, hits_ref);
    let s = bpmr.stats();
    println!(
        "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}",
        "dp bucket PMR (b=8)", r.elapsed, s.nodes, s.height, s.entries, qt
    );

    for (label, algo) in [
        ("dp R-tree (2,8) mean", RtreeSplitAlgorithm::Mean),
        ("dp R-tree (2,8) sweep", RtreeSplitAlgorithm::Sweep),
    ] {
        let (rt, r) = measure_build(&machine, || build_rtree(&machine, &data.segs, 2, 8, algo));
        let (qt, hits) = time_queries(&|q| rt.window_query(q, &data.segs));
        assert_eq!(hits, hits_ref);
        let s = rt.stats();
        let (cov, ov) = rt.quality_metrics();
        println!(
            "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}   (coverage {:.2e}, overlap {:.2e})",
            label, r.elapsed, s.nodes, s.height, s.entries, qt, cov, ov
        );
    }

    {
        let (rt, r) = measure_build(&machine, || {
            pack_rtree_hilbert(&machine, &data.segs, data.world, 8)
        });
        let (qt, hits) = time_queries(&|q| rt.window_query(q, &data.segs));
        assert_eq!(hits, hits_ref);
        let s = rt.stats();
        let (cov, ov) = rt.quality_metrics();
        println!(
            "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}   (coverage {:.2e}, overlap {:.2e})",
            "dp R-tree hilbert-pack", r.elapsed, s.nodes, s.height, s.entries, qt, cov, ov
        );
    }

    // Sequential baselines.
    let t = Instant::now();
    let seq_pm1 = seq::pm1::Pm1Tree::build(data.world, &data.segs, 11);
    let b = t.elapsed();
    let (qt, hits) = time_queries(&|q| seq_pm1.window_query(q, &data.segs));
    assert_eq!(hits, hits_ref);
    let s = seq_pm1.stats();
    println!(
        "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}",
        "seq PM1 quadtree", b, s.nodes, s.height, s.entries, qt
    );

    let t = Instant::now();
    let seq_bpmr = seq::bucket_pmr::BucketPmrTree::build(data.world, &data.segs, 8, 11);
    let b = t.elapsed();
    let (qt, hits) = time_queries(&|q| seq_bpmr.window_query(q, &data.segs));
    assert_eq!(hits, hits_ref);
    let s = seq_bpmr.stats();
    println!(
        "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}",
        "seq bucket PMR (b=8)", b, s.nodes, s.height, s.entries, qt
    );

    let t = Instant::now();
    let seq_pmr = seq::pmr::PmrTree::build(data.world, &data.segs, 8, 11);
    let b = t.elapsed();
    let (qt, hits) = time_queries(&|q| seq_pmr.window_query(q, &data.segs));
    assert_eq!(hits, hits_ref);
    let s = seq_pmr.stats();
    println!(
        "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}",
        "seq classic PMR (t=8)", b, s.nodes, s.height, s.entries, qt
    );

    for (label, split) in [
        (
            "seq R-tree quadratic",
            seq::rtree::SplitAlgorithm::Quadratic,
        ),
        ("seq R-tree linear", seq::rtree::SplitAlgorithm::Linear),
        ("seq R-tree R*-axis", seq::rtree::SplitAlgorithm::RStarAxis),
    ] {
        let t = Instant::now();
        let rt = seq::rtree::RTree::build(&data.segs, 2, 8, split);
        let b = t.elapsed();
        let (qt, hits) = time_queries(&|q| rt.window_query(q, &data.segs));
        assert_eq!(hits, hits_ref);
        let s = rt.stats();
        let (cov, ov) = rt.quality_metrics();
        println!(
            "{:<28} {:>8.1?} {:>8} {:>8} {:>9} {:>10.1}   (coverage {:.2e}, overlap {:.2e})",
            label, b, s.nodes, s.height, s.entries, qt, cov, ov
        );
    }

    println!("\nall structures returned identical query answers.");
    println!("ok.");
}
