//! Map overlay: the GIS scenario that motivated the paper's primitives —
//! find every crossing between a road network and a river network by
//! building one bucket PMR quadtree per layer and co-traversing them
//! (the spatial join of [Hoel93/Hoel94a], the paper's conclusion).
//!
//! Run with: `cargo run --release --example map_overlay`

use dp_spatial_suite::geom::LineSeg;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::join::{brute_force_join, spatial_join};
use dp_spatial_suite::spatial::stats::measure_build;
use dp_spatial_suite::workloads::{road_network, uniform_segments};
use scan_model::Machine;
use std::time::Instant;

fn main() {
    let machine = Machine::parallel();
    let size = 1024u32;

    // Layer 1: a street grid.
    let roads = road_network(24, size, 1);
    // Layer 2: meandering "rivers" — long uniform segments.
    let rivers = uniform_segments(300, size, 160, 2);

    println!("== map overlay: roads x rivers spatial join ==\n");
    println!("roads : {} segments ({})", roads.len(), roads.name);
    println!("rivers: {} segments ({})", rivers.len(), rivers.name);

    let (road_tree, rep_a) = measure_build(&machine, || {
        build_bucket_pmr(&machine, roads.world, &roads.segs, 8, 10)
    });
    let (river_tree, rep_b) = measure_build(&machine, || {
        build_bucket_pmr(&machine, rivers.world, &rivers.segs, 8, 10)
    });
    println!(
        "\nroad index : {} rounds, {} leaves, built in {:?}",
        road_tree.rounds(),
        road_tree.stats().leaves,
        rep_a.elapsed
    );
    println!(
        "river index: {} rounds, {} leaves, built in {:?}",
        river_tree.rounds(),
        river_tree.stats().leaves,
        rep_b.elapsed
    );

    let t = Instant::now();
    let crossings = spatial_join(&road_tree, &roads.segs, &river_tree, &rivers.segs);
    let join_time = t.elapsed();

    let t = Instant::now();
    let brute = brute_force_join(&roads.segs, &rivers.segs);
    let brute_time = t.elapsed();

    assert_eq!(crossings, brute, "join must match the all-pairs reference");
    println!(
        "\ncrossings found: {}   (quadtree join {:?} vs brute force {:?})",
        crossings.len(),
        join_time,
        brute_time
    );

    // A few sample crossings for flavour.
    for &(r, w) in crossings.iter().take(5) {
        let road: &LineSeg = &roads.segs[r as usize];
        let river: &LineSeg = &rivers.segs[w as usize];
        println!("  road {r} {road}  x  river {w} {river}");
    }
    if crossings.len() > 5 {
        println!("  ... and {} more", crossings.len() - 5);
    }

    println!("\nok.");
}
