//! Quickstart: build all three spatial indexes of Hoel & Samet (ICPP
//! 1995) over the paper's own nine-segment example dataset, inspect the
//! resulting structures, and run a few queries.
//!
//! Run with: `cargo run --example quickstart`

use dp_spatial_suite::geom::{Point, Rect};
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial_suite::spatial::rtree::build_rtree;
use dp_spatial_suite::spatial::stats::measure_build;
use dp_spatial_suite::workloads::{paper_dataset, paper_world, PAPER_LABELS};
use scan_model::Machine;

fn main() {
    let world = paper_world();
    let segs = paper_dataset();
    let machine = Machine::parallel();

    println!("== dp-spatial quickstart: the paper's 9-segment dataset ==\n");
    println!("world: {world}");
    for (k, s) in segs.iter().enumerate() {
        println!("  {}: {s}", PAPER_LABELS[k]);
    }

    // ------------------------------------------------------------------
    // PM1 quadtree (paper Sec. 5.1)
    // ------------------------------------------------------------------
    let (pm1, rep) = measure_build(&machine, || build_pm1(&machine, world, &segs, 6));
    let s = pm1.stats();
    println!("\n-- PM1 quadtree --");
    println!(
        "rounds: {}   nodes: {}   leaves: {} ({} empty)   height: {}",
        pm1.rounds(),
        s.nodes,
        s.leaves,
        s.empty_leaves,
        s.height
    );
    println!(
        "primitive ops: {} scans, {} elementwise, {} permutes ({} per round)",
        rep.ops.scans,
        rep.ops.elementwise,
        rep.ops.permutes,
        rep.ops_per_round()
            .map(|v| format!("{v:.1}"))
            .unwrap_or_default()
    );

    // ------------------------------------------------------------------
    // Bucket PMR quadtree, capacity 2, max height 3 (paper Fig. 4)
    // ------------------------------------------------------------------
    let (bpmr, rep) = measure_build(&machine, || build_bucket_pmr(&machine, world, &segs, 2, 3));
    let s = bpmr.stats();
    println!("\n-- bucket PMR quadtree (capacity 2, max height 3) --");
    println!(
        "rounds: {}   nodes: {}   leaves: {}   height: {}   over-capacity max-depth leaves: {}",
        bpmr.rounds(),
        s.nodes,
        s.leaves,
        s.height,
        bpmr.truncated()
    );
    println!("primitive ops: {} total", rep.ops.total_primitives());

    // ------------------------------------------------------------------
    // R-tree, order (1,3) (paper Sec. 5.3)
    // ------------------------------------------------------------------
    let (rt, rep) = measure_build(&machine, || {
        build_rtree(&machine, &segs, 1, 3, RtreeSplitAlgorithm::Sweep)
    });
    let s = rt.stats();
    println!("\n-- R-tree, order (1,3), sweep split --");
    println!(
        "rounds: {}   nodes: {}   leaves: {}   height: {}",
        rt.rounds(),
        s.nodes,
        s.leaves,
        s.height
    );
    let (cov, ov) = rt.quality_metrics();
    println!("coverage: {cov:.1}   sibling overlap: {ov:.2}");
    println!(
        "primitive ops: {} scans, {} sorts",
        rep.ops.scans, rep.ops.sorts
    );

    // ------------------------------------------------------------------
    // Queries: all three structures answer identically.
    // ------------------------------------------------------------------
    println!("\n-- queries --");
    let window = Rect::from_coords(0.0, 4.0, 4.0, 8.0); // the NW quadrant
    let q_pm1 = pm1.window_query(&window, &segs);
    let q_bpmr = bpmr.window_query(&window, &segs);
    let q_rt = rt.window_query(&window, &segs);
    assert_eq!(q_pm1, q_bpmr);
    assert_eq!(q_pm1, q_rt);
    let labels: Vec<char> = q_pm1.iter().map(|&id| PAPER_LABELS[id as usize]).collect();
    println!("window {window} -> {labels:?}");

    let p = Point::new(1.0, 6.0); // the shared c/d/i vertex
    let at_vertex: Vec<char> = bpmr
        .point_query(p)
        .iter()
        .map(|&id| PAPER_LABELS[id as usize])
        .collect();
    println!("point  {p} block contains -> {at_vertex:?}");

    let probe = Point::new(6.5, 0.5);
    if let Some((id, d)) = rt.nearest(probe, &segs) {
        println!(
            "nearest segment to {probe}: {} at distance {d:.3}",
            PAPER_LABELS[id as usize]
        );
    }

    println!("\nok.");
}
