//! Replays the paper's worked primitive examples (Figs. 8–18 and 29) and
//! prints the vectors in the same layout as the figures, so the output
//! can be checked against the paper side by side.
//!
//! Run with: `cargo run --example paper_figures`

use dp_spatial_suite::scanmodel::ops::{Max, Min, Sum};
use dp_spatial_suite::scanmodel::{Direction, Machine, ScanKind, Segments};

fn row<T: std::fmt::Display>(label: &str, v: &[T]) {
    print!("{label:<28}");
    for x in v {
        print!("{x:>4}");
    }
    println!();
}

fn row_b(label: &str, v: &[bool]) {
    let ints: Vec<u8> = v.iter().map(|&b| b as u8).collect();
    row(label, &ints);
}

fn main() {
    let m = Machine::sequential();

    // ------------------------------------------------------------------
    println!("== Figure 8: segmented scans ==");
    let data: Vec<i64> = vec![3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3];
    let seg = Segments::from_lengths(&[3, 4, 2, 3]).unwrap();
    let sf: Vec<u8> = seg.flags().iter().map(|&b| b as u8).collect();
    row("data", &data);
    row("sf:segment flag", &sf);
    row(
        "up-scan(data,sf,+,in)",
        &m.scan(&data, &seg, Sum, Direction::Up, ScanKind::Inclusive),
    );
    row(
        "up-scan(data,sf,+,ex)",
        &m.scan(&data, &seg, Sum, Direction::Up, ScanKind::Exclusive),
    );
    row(
        "down-scan(data,sf,+,in)",
        &m.scan(&data, &seg, Sum, Direction::Down, ScanKind::Inclusive),
    );
    row(
        "down-scan(data,sf,+,ex)",
        &m.scan(&data, &seg, Sum, Direction::Down, ScanKind::Exclusive),
    );

    // ------------------------------------------------------------------
    println!("\n== Figure 9: elementwise addition ==");
    let a = vec![0i64, 1, 2, 1, 4, 3, 6, 2, 9, 5];
    let b = vec![4i64, 7, 2, 0, 3, 6, 1, 5, 0, 4];
    row("A", &a);
    row("B", &b);
    row("ew(+,A,B)", &m.zip_map(&a, &b, |x, y| x + y));

    // ------------------------------------------------------------------
    println!("\n== Figure 10: permutation ==");
    let data: Vec<char> = "abcdefgh".chars().collect();
    let index = vec![2usize, 5, 4, 3, 1, 6, 0, 7];
    row("A", &data);
    row("index", &index);
    row("permute(A,index)", &m.permute(&data, &index));

    // ------------------------------------------------------------------
    println!("\n== Figures 13-14: cloning ==");
    let x: Vec<char> = "abcdefg".chars().collect();
    let cf = vec![true, false, false, true, false, false, true];
    let seg1 = Segments::single(7);
    row("X", &x);
    row_b("CF:clone flag", &cf);
    let f1 = m.up_scan(
        &cf.iter().map(|&b| b as i64).collect::<Vec<_>>(),
        Sum,
        ScanKind::Exclusive,
    );
    row("F1=up-scan(CF,+,ex)", &f1);
    let f2: Vec<usize> = f1
        .iter()
        .enumerate()
        .map(|(i, &o)| i + o as usize)
        .collect();
    row("F2=ew(+,P,F1)", &f2);
    let layout = m.clone_layout(&seg1, &cf);
    row("result", &m.apply_clone(&x, &layout));

    // ------------------------------------------------------------------
    println!("\n== Figures 15-16: unshuffling ==");
    let x: Vec<char> = "babaaba".chars().collect();
    let class: Vec<bool> = x.iter().map(|&c| c == 'b').collect();
    let seg1 = Segments::single(7);
    row("X", &x);
    let f1 = m.scan(
        &class.iter().map(|&b| b as i64).collect::<Vec<_>>(),
        &seg1,
        Sum,
        Direction::Up,
        ScanKind::Inclusive,
    );
    row("F1=up-scan(X=b,+,in)", &f1);
    let f2 = m.scan(
        &class.iter().map(|&b| !b as i64).collect::<Vec<_>>(),
        &seg1,
        Sum,
        Direction::Down,
        ScanKind::Inclusive,
    );
    row("F2=down-scan(X=a,+,in)", &f2);
    let layout = m.unshuffle_layout(&seg1, &class);
    row("F3:new positions", &layout.target);
    row("permute(X,F3)", &m.apply_unshuffle(&x, &layout));

    // ------------------------------------------------------------------
    println!("\n== Figures 17-18: duplicate deletion ==");
    let x: Vec<char> = "aabcccde".chars().collect();
    let seg1 = Segments::single(8);
    row("X (sorted)", &x);
    let df: Vec<bool> = (0..x.len()).map(|i| i > 0 && x[i] == x[i - 1]).collect();
    row_b("DF:duplicate flag", &df);
    let f1 = m.up_scan(
        &df.iter().map(|&b| b as i64).collect::<Vec<_>>(),
        Sum,
        ScanKind::Exclusive,
    );
    row("F1=up-scan(DF,+,ex)", &f1);
    let (out, _) = m.delete_duplicates(&x, &seg1);
    row("result", &out);

    // ------------------------------------------------------------------
    println!("\n== Figure 19: node capacity check ==");
    let seg = Segments::from_lengths(&[3, 4, 2]).unwrap();
    let sf: Vec<u8> = seg.flags().iter().map(|&b| b as u8).collect();
    row("sf:segment flag", &sf);
    row("down-scan(1,sf,+,in)", &m.capacity_check_scan(&seg));
    row("node counts", &m.segment_counts(&seg));

    // ------------------------------------------------------------------
    println!("\n== Figure 29: R-tree sweep split scans ==");
    // Boxes A-D with left sides 10,20,40,60 and right sides 30,50,70,80.
    let ls = vec![10.0f64, 20.0, 40.0, 60.0];
    let rs = vec![30.0f64, 50.0, 70.0, 80.0];
    let seg4 = Segments::single(4);
    let fmt = |v: Vec<f64>| -> Vec<i64> { v.iter().map(|&x| x as i64).collect() };
    row("ls:left side", &fmt(ls.clone()));
    row("rs:right side", &fmt(rs.clone()));
    row(
        "L Bbox left side",
        &fmt(m.scan(&ls, &seg4, Min, Direction::Up, ScanKind::Inclusive)),
    );
    row(
        "L Bbox right side",
        &fmt(m.scan(&rs, &seg4, Max, Direction::Up, ScanKind::Inclusive)),
    );
    // Downward exclusive scans; the identities at the final lane are
    // printed as '-' by the paper.
    let rbl = m.scan(&ls, &seg4, Min, Direction::Down, ScanKind::Exclusive);
    let rbr = m.scan(&rs, &seg4, Max, Direction::Down, ScanKind::Exclusive);
    let show = |v: &[f64]| -> Vec<String> {
        v.iter()
            .map(|&x| {
                if x.is_finite() {
                    format!("{}", x as i64)
                } else {
                    "-".to_string()
                }
            })
            .collect()
    };
    row("R Bbox left side", &show(&rbl));
    row("R Bbox right side", &show(&rbr));

    println!("\nok.");
}
