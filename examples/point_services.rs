//! Point services: index the junctions of a road network in a
//! data-parallel k-D tree (the scan-model point-structure build the paper
//! cites from Blelloch as the starting point of this research line), then
//! answer range and nearest-facility queries, cross-checked against the
//! batch window-query engine running over a bucket PMR quadtree of the
//! roads themselves.
//!
//! Run with: `cargo run --release --example point_services`

use dp_spatial_suite::geom::{Point, Rect};
use dp_spatial_suite::spatial::batch::batch_window_query;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::kdtree::build_kdtree;
use dp_spatial_suite::workloads::road_network;
use scan_model::Machine;
use std::time::Instant;

fn main() {
    let machine = Machine::parallel();
    let size = 1024u32;
    let roads = road_network(28, size, 5);

    // The "facilities": every distinct road junction.
    let mut facilities: Vec<Point> = roads.segs.iter().flat_map(|s| [s.a, s.b]).collect();
    facilities.sort_by(|a, b| a.lex_cmp(b));
    facilities.dedup();

    println!("== point services over {} junctions ==\n", facilities.len());

    let t = Instant::now();
    let kd = build_kdtree(&machine, &facilities, 8);
    println!(
        "k-D tree: {} rounds, height {}, built in {:?}",
        kd.rounds(),
        kd.height(),
        t.elapsed()
    );

    // Range query: facilities in a district.
    let district = Rect::from_coords(200.0, 200.0, 420.0, 380.0);
    let in_district = kd.range_query(&district, &facilities);
    println!("\nfacilities in district {district}: {}", in_district.len());

    // Nearest facility to a few probe locations.
    for probe in [
        Point::new(10.0, 10.0),
        Point::new(512.0, 512.0),
        Point::new(1000.0, 40.0),
    ] {
        let (id, d) = kd.nearest(probe, &facilities).expect("non-empty index");
        println!(
            "nearest facility to {probe}: #{id} at {} (distance {d:.1})",
            facilities[id as usize]
        );
    }

    // Batch service-area queries: for each of the first 50 facilities,
    // which road segments pass within its 24-unit service window? All 50
    // queries run through the quadtree in data-parallel lockstep.
    let road_index = build_bucket_pmr(&machine, roads.world, &roads.segs, 8, 10);
    let windows: Vec<Rect> = facilities
        .iter()
        .take(50)
        .map(|f| {
            Rect::from_coords(
                (f.x - 24.0).max(0.0),
                (f.y - 24.0).max(0.0),
                (f.x + 24.0).min(size as f64),
                (f.y + 24.0).min(size as f64),
            )
        })
        .collect();
    let t = Instant::now();
    let service = batch_window_query(&machine, &road_index, &windows, &roads.segs);
    let batch_time = t.elapsed();

    // Cross-check against one-at-a-time queries.
    let t = Instant::now();
    for (w, expect) in windows.iter().zip(service.iter()) {
        assert_eq!(&road_index.window_query(w, &roads.segs), expect);
    }
    let single_time = t.elapsed();

    let total: usize = service.iter().map(|v| v.len()).sum();
    println!(
        "\nbatch service-area queries: 50 windows, {total} road hits \
         (batch {batch_time:?}, one-at-a-time {single_time:?})"
    );
    println!("\nok.");
}
