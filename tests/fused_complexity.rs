//! Fusion complexity accounting: the fused PM₁ decision must build the
//! exact same tree as the unfused seven-scan composition while issuing
//! strictly fewer scan *passes* per round, and the arena-backed `_into`
//! plumbing must actually avoid allocations. This is the acceptance test
//! for the fused-kernel layer: bit-identity plus a strictly better
//! pass-count profile.

use dp_geom::{LineSeg, Rect};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::lineproc::{run_quad_build, LineProcSet};
use dp_spatial::pm1::{
    build_pm1, build_pm1_unfused, pm1_verdicts, pm1_verdicts_unfused, Pm1Verdict,
};
use scan_model::{Backend, Machine};

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, 64.0, 64.0)
}

fn dataset(n: usize) -> Vec<LineSeg> {
    (0..n)
        .map(|k| {
            let x = ((k * 13) % 60) as f64 + ((k % 7) as f64) / 8.0;
            let y = ((k * 29) % 60) as f64 + ((k % 5) as f64) / 8.0;
            LineSeg::from_coords(x, y, (x + 2.5).min(63.5), (y + 1.5).min(63.5))
        })
        .collect()
}

fn machines() -> Vec<Machine> {
    vec![
        Machine::sequential(),
        Machine::new(Backend::Parallel).with_par_threshold(1),
    ]
}

#[test]
fn fused_pm1_matches_unfused_with_fewer_scan_passes() {
    let segs = dataset(120);
    for m in machines() {
        m.reset_stats();
        let fused = build_pm1(&m, world(), &segs, 8);
        let fused_ops = m.stats();

        m.reset_stats();
        let unfused = build_pm1_unfused(&m, world(), &segs, 8);
        let unfused_ops = m.stats();

        // Bit-identical trees: same shape, same leaf contents, same
        // query answers.
        assert_eq!(fused.stats(), unfused.stats());
        assert_eq!(
            fused.window_query(&world(), &segs),
            unfused.window_query(&world(), &segs)
        );
        let mut sig_fused = Vec::new();
        fused.for_each_leaf(|rect, depth, ids| {
            sig_fused.push((
                depth,
                ids.to_vec(),
                rect.min.x.to_bits(),
                rect.min.y.to_bits(),
            ));
        });
        let mut sig_unfused = Vec::new();
        unfused.for_each_leaf(|rect, depth, ids| {
            sig_unfused.push((
                depth,
                ids.to_vec(),
                rect.min.x.to_bits(),
                rect.min.y.to_bits(),
            ));
        });
        assert_eq!(sig_fused, sig_unfused);

        // Same number of logical scans and rounds…
        assert_eq!(fused.rounds(), unfused.rounds());
        assert_eq!(fused_ops.rounds, unfused_ops.rounds);

        // …but the fused build walks the segment structure strictly fewer
        // times: all seven PM₁ decision scans collapse into one pass per
        // round.
        assert!(
            fused_ops.scan_passes < unfused_ops.scan_passes,
            "fused passes {} not below unfused {}",
            fused_ops.scan_passes,
            unfused_ops.scan_passes
        );
        assert!(fused_ops.fused_lanes_saved > 0);
        assert_eq!(
            fused_ops.scans,
            fused_ops.scan_passes + fused_ops.fused_lanes_saved,
            "fused-pass invariant: {fused_ops:?}"
        );
        // The unfused path never fuses.
        assert_eq!(unfused_ops.fused_lanes_saved, 0);
        assert_eq!(unfused_ops.scans, unfused_ops.scan_passes);

        // The decision's per-round profile: 7 scans in 1 fused pass plus
        // the split stages' unfused scans. Per round the fused build saves
        // exactly 6 passes.
        let rounds = fused_ops.rounds;
        assert_eq!(fused_ops.fused_lanes_saved, 6 * (rounds + 1));

        // Arena plumbing is live: `_into` primitives found usable leased
        // capacity.
        assert!(fused_ops.allocs_avoided > 0, "{fused_ops:?}");
    }
}

/// Both decision paths funnel into `Pm1Verdict::classify`, so they cannot
/// drift structurally — but the fused path also carries its quantities as
/// `f64` lanes. This test runs a real build through the round driver with
/// a decide hook that recomputes the verdicts both ways on every live
/// frontier state and demands exact equality, round by round.
#[test]
fn fused_and_unfused_verdicts_agree_on_every_round() {
    let segs = dataset(140);
    for m in machines() {
        let mut checked = 0usize;
        let mut decide = |machine: &Machine, state: &LineProcSet, segs: &[LineSeg]| {
            let fused = pm1_verdicts(machine, state, segs);
            let unfused = pm1_verdicts_unfused(machine, state, segs);
            assert_eq!(fused, unfused, "verdict drift on a live frontier");
            checked += fused.len();
            fused.into_iter().map(Pm1Verdict::must_split).collect()
        };
        let out = run_quad_build(&m, world(), &segs, 8, &mut decide);
        assert!(
            out.rounds >= 2,
            "need a multi-round build, got {}",
            out.rounds
        );
        assert!(
            checked > segs.len(),
            "only {checked} verdicts checked across the whole build"
        );
    }
}

#[test]
fn bucket_pmr_build_reuses_arena_capacity() {
    let segs = dataset(150);
    for m in machines() {
        m.reset_stats();
        let tree = build_bucket_pmr(&m, world(), &segs, 3, 8);
        assert!(tree.rounds() >= 2, "need multi-round build");
        let ops = m.stats();
        // Round 2 onward leases recycled round-1 buffers.
        assert!(ops.allocs_avoided > 0, "{ops:?}");
        let (takes, hits) = m.arena_stats();
        assert!(takes > 0 && hits > 0, "takes {takes} hits {hits}");
    }
}
