//! Cross-crate property tests: for arbitrary integer-grid segment sets,
//! every structure must satisfy its defining invariant, and every
//! structure must answer window queries identically to brute force.

use dp_spatial_suite::geom::{clip_segment_closed, LineSeg, Rect};
use dp_spatial_suite::seq;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial_suite::spatial::rtree::build_rtree;
use proptest::prelude::*;
use scan_model::Machine;

const WORLD_SIZE: i32 = 64;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD_SIZE as f64, WORLD_SIZE as f64)
}

/// Arbitrary non-degenerate integer-grid segments strictly inside the
/// half-open world.
fn segments() -> impl Strategy<Value = Vec<LineSeg>> {
    prop::collection::vec(
        (0..WORLD_SIZE, 0..WORLD_SIZE, 0..WORLD_SIZE, 0..WORLD_SIZE),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .filter(|&(ax, ay, bx, by)| (ax, ay) != (bx, by))
            .map(|(ax, ay, bx, by)| {
                LineSeg::from_coords(ax as f64, ay as f64, bx as f64, by as f64)
            })
            .collect::<Vec<_>>()
    })
    .prop_filter("need at least one segment", |v| !v.is_empty())
}

fn windows() -> impl Strategy<Value = Rect> {
    (0..WORLD_SIZE, 0..WORLD_SIZE, 1..WORLD_SIZE, 1..WORLD_SIZE).prop_map(|(x, y, w, h)| {
        let x0 = x.min(WORLD_SIZE - 1) as f64;
        let y0 = y.min(WORLD_SIZE - 1) as f64;
        Rect::from_coords(
            x0,
            y0,
            (x0 + w as f64).min(WORLD_SIZE as f64),
            (y0 + h as f64).min(WORLD_SIZE as f64),
        )
    })
}

fn brute(segs: &[LineSeg], q: &Rect) -> Vec<u32> {
    (0..segs.len() as u32)
        .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket PMR: capacity invariant below max depth, and window queries
    /// match brute force for arbitrary windows.
    #[test]
    fn bucket_pmr_invariant_and_queries(segs in segments(), q in windows(), cap in 1usize..6) {
        let machine = Machine::parallel();
        let t = build_bucket_pmr(&machine, world(), &segs, cap, 8);
        t.for_each_leaf(|_, depth, ids| {
            if depth < 8 {
                assert!(ids.len() <= cap);
            }
        });
        prop_assert_eq!(t.window_query(&q, &segs), brute(&segs, &q));
    }

    /// Bucket PMR bulk build equals incremental build (order
    /// independence is total, not just statistical).
    #[test]
    fn bucket_pmr_bulk_equals_incremental(segs in segments(), cap in 1usize..5) {
        let machine = Machine::sequential();
        let dp = build_bucket_pmr(&machine, world(), &segs, cap, 8);
        let sq = seq::bucket_pmr::BucketPmrTree::build(world(), &segs, cap, 8);
        let (a, b) = (dp.stats(), sq.stats());
        prop_assert_eq!(a.nodes, b.nodes);
        prop_assert_eq!(a.leaves, b.leaves);
        prop_assert_eq!(a.entries, b.entries);
        prop_assert_eq!(a.height, b.height);
    }

    /// PM1: the vertex rule holds in every non-truncated leaf, and the
    /// dp and sequential builds agree on structure size.
    #[test]
    fn pm1_invariant_and_agreement(segs in segments()) {
        let machine = Machine::parallel();
        let depth = 8usize;
        let dp = build_pm1(&machine, world(), &segs, depth);
        dp.for_each_leaf(|rect, d, ids| {
            if d < depth {
                assert!(seq::pm1::pm1_block_valid(ids, &segs, rect));
            }
        });
        let sq = seq::pm1::Pm1Tree::build(world(), &segs, depth);
        prop_assert_eq!(dp.stats().nodes, sq.stats().nodes);
        prop_assert_eq!(dp.stats().entries, sq.stats().entries);
    }

    /// R-tree: order invariants hold and queries match brute force for
    /// both split selectors and a spread of orders.
    #[test]
    fn rtree_invariants_and_queries(
        segs in segments(),
        q in windows(),
        order in prop::sample::select(vec![(1usize, 3usize), (2, 4), (2, 6), (3, 8)]),
    ) {
        let machine = Machine::parallel();
        for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
            let t = build_rtree(&machine, &segs, order.0, order.1, algo);
            t.check_invariants(&segs);
            prop_assert_eq!(t.window_query(&q, &segs), brute(&segs, &q));
        }
    }

    /// Sequential R-tree: same contract under incremental insertion.
    #[test]
    fn seq_rtree_invariants_and_queries(segs in segments(), q in windows()) {
        for split in [
            seq::rtree::SplitAlgorithm::Linear,
            seq::rtree::SplitAlgorithm::Quadratic,
            seq::rtree::SplitAlgorithm::RStarAxis,
        ] {
            let t = seq::rtree::RTree::build(&segs, 2, 5, split);
            t.check_invariants(&segs, segs.len());
            prop_assert_eq!(t.window_query(&q, &segs), brute(&segs, &q));
        }
    }

    /// Classic PMR: insert everything, delete a prefix, and the survivors
    /// still answer queries exactly.
    #[test]
    fn pmr_delete_preserves_queries(segs in segments(), q in windows()) {
        let mut t = seq::pmr::PmrTree::build(world(), &segs, 3, 8);
        let keep_from = segs.len() / 2;
        for id in 0..keep_from {
            prop_assert!(t.delete(id as u32, &segs));
        }
        let got = t.window_query(&q, &segs);
        let want: Vec<u32> = brute(&segs, &q)
            .into_iter()
            .filter(|&id| id as usize >= keep_from)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The scan-model backends produce identical quadtrees.
    #[test]
    fn backends_agree_on_bucket_pmr(segs in segments()) {
        let seq_m = Machine::sequential();
        let par_m = Machine::parallel().with_par_threshold(1);
        let a = build_bucket_pmr(&seq_m, world(), &segs, 3, 8);
        let b = build_bucket_pmr(&par_m, world(), &segs, 3, 8);
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Point queries: for every segment, probing its own midpoint block
    /// finds it (when the midpoint is inside the world).
    #[test]
    fn point_query_finds_own_midpoint(segs in segments()) {
        let machine = Machine::parallel();
        let t = build_bucket_pmr(&machine, world(), &segs, 4, 8);
        for (id, s) in segs.iter().enumerate() {
            let mid = s.midpoint();
            if world().contains_half_open(mid) {
                prop_assert!(t.point_query(mid).contains(&(id as u32)));
            }
        }
    }
}
