//! Integration tests for the extension features beyond the paper's core:
//! the PM₂/PM₃ family members, the Hilbert-packed R-tree, the batch
//! (data-parallel) query engine, and the scan-model k-D tree — all
//! cross-validated against brute force and against each other on the
//! shared workloads.

use dp_spatial_suite::geom::{clip_segment_closed, Point, Rect};
use dp_spatial_suite::seq;
use dp_spatial_suite::spatial::batch::batch_window_query;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::kdtree::build_kdtree;
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::pm_family::{build_pm2, build_pm3};
use dp_spatial_suite::spatial::rtree::pack_rtree_hilbert;
use dp_spatial_suite::workloads::{polygon_rings, road_network, uniform_segments};
use scan_model::Machine;

#[test]
fn pm_family_agrees_with_sequential_on_planar_maps() {
    let machine = Machine::parallel();
    let data = polygon_rings(6, 256, 9);
    let depth = 9usize;
    let dp2 = build_pm2(&machine, data.world, &data.segs, depth);
    let sq2 = seq::pm23::PmTree::build(data.world, &data.segs, seq::pm23::PmVariant::Pm2, depth);
    assert_eq!(dp2.stats().nodes, sq2.stats().nodes);
    let dp3 = build_pm3(&machine, data.world, &data.segs, depth);
    let sq3 = seq::pm23::PmTree::build(data.world, &data.segs, seq::pm23::PmVariant::Pm3, depth);
    assert_eq!(dp3.stats().nodes, sq3.stats().nodes);
    // Strictness ordering on a real map.
    let dp1 = build_pm1(&machine, data.world, &data.segs, depth);
    assert!(dp1.stats().nodes >= dp2.stats().nodes);
    assert!(dp2.stats().nodes >= dp3.stats().nodes);
    // All three exact under queries.
    let q = Rect::from_coords(30.0, 30.0, 140.0, 120.0);
    let want: Vec<u32> = (0..data.segs.len() as u32)
        .filter(|&id| clip_segment_closed(&data.segs[id as usize], &q).is_some())
        .collect();
    for t in [&dp1, &dp2, &dp3] {
        assert_eq!(t.window_query(&q, &data.segs), want);
    }
}

#[test]
fn pm_family_validity_predicates_hold_leafwise() {
    let machine = Machine::parallel();
    let data = polygon_rings(5, 256, 21);
    let depth = 9usize;
    let dp2 = build_pm2(&machine, data.world, &data.segs, depth);
    dp2.for_each_leaf(|rect, d, ids| {
        if d < depth {
            assert!(seq::pm23::pm_block_valid(
                seq::pm23::PmVariant::Pm2,
                ids,
                &data.segs,
                rect
            ));
        }
    });
    let dp3 = build_pm3(&machine, data.world, &data.segs, depth);
    dp3.for_each_leaf(|rect, d, ids| {
        if d < depth {
            assert!(seq::pm23::pm_block_valid(
                seq::pm23::PmVariant::Pm3,
                ids,
                &data.segs,
                rect
            ));
        }
    });
}

#[test]
fn packed_rtree_exact_on_workloads() {
    let machine = Machine::parallel();
    for data in [uniform_segments(400, 512, 40, 3), road_network(14, 512, 4)] {
        let t = pack_rtree_hilbert(&machine, &data.segs, data.world, 8);
        t.check_invariants(&data.segs);
        for q in [
            Rect::from_coords(0.0, 0.0, 128.0, 128.0),
            Rect::from_coords(200.0, 100.0, 400.0, 300.0),
            Rect::from_coords(0.0, 0.0, 512.0, 512.0),
        ] {
            let want: Vec<u32> = (0..data.segs.len() as u32)
                .filter(|&id| clip_segment_closed(&data.segs[id as usize], &q).is_some())
                .collect();
            assert_eq!(t.window_query(&q, &data.segs), want, "{}", data.name);
        }
        // Nearest agrees with brute force.
        let p = Point::new(257.0, 130.0);
        let (_, d) = t.nearest(p, &data.segs).unwrap();
        let brute = data
            .segs
            .iter()
            .map(|s| s.dist2_to_point(p).sqrt())
            .min_by(|a, b| a.total_cmp(b))
            .unwrap();
        assert_eq!(d, brute);
    }
}

#[test]
fn batch_queries_match_singles_across_structures() {
    let machine = Machine::parallel();
    let data = road_network(16, 512, 8);
    let tree = build_bucket_pmr(&machine, data.world, &data.segs, 6, 10);
    let queries: Vec<Rect> = (0..64)
        .map(|k| {
            let x = ((k * 29) % 450) as f64;
            let y = ((k * 47) % 450) as f64;
            Rect::from_coords(x, y, x + 40.0, y + 40.0)
        })
        .collect();
    let batched = batch_window_query(&machine, &tree, &queries, &data.segs);
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(batched[i], tree.window_query(q, &data.segs), "query {i}");
    }
}

#[test]
fn kdtree_indexes_junctions_exactly() {
    let machine = Machine::parallel();
    let data = road_network(16, 512, 12);
    let mut junctions: Vec<Point> = data.segs.iter().flat_map(|s| [s.a, s.b]).collect();
    junctions.sort_by(|a, b| a.lex_cmp(b));
    junctions.dedup();
    let kd = build_kdtree(&machine, &junctions, 8);
    let q = Rect::from_coords(100.0, 100.0, 300.0, 260.0);
    let got = kd.range_query(&q, &junctions);
    let want: Vec<u32> = (0..junctions.len() as u32)
        .filter(|&id| q.contains(junctions[id as usize]))
        .collect();
    assert_eq!(got, want);
    let probe = Point::new(333.0, 111.0);
    let (_, d) = kd.nearest(probe, &junctions).unwrap();
    let brute = junctions
        .iter()
        .map(|p| p.dist(probe))
        .min_by(|a, b| a.total_cmp(b))
        .unwrap();
    assert_eq!(d, brute);
}

#[test]
fn seq_bucket_pmr_delete_then_rebuild_equivalence_on_map() {
    let data = road_network(10, 256, 30);
    let mut t = seq::bucket_pmr::BucketPmrTree::build(data.world, &data.segs, 4, 9);
    // Delete every third segment.
    let survivors: Vec<u32> = (0..data.segs.len() as u32)
        .filter(|id| id % 3 != 0)
        .collect();
    for id in 0..data.segs.len() as u32 {
        if id % 3 == 0 {
            assert!(t.delete(id, &data.segs));
        }
    }
    let mut reference = seq::bucket_pmr::BucketPmrTree::new(data.world, 4, 9);
    for &id in &survivors {
        reference.insert(id, &data.segs);
    }
    assert_eq!(t.shape_signature(), reference.shape_signature());
}
