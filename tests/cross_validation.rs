//! Cross-crate integration: every index structure in the workspace must
//! answer queries identically to a brute-force scan, on every workload
//! family, and the data-parallel builds must agree with their sequential
//! counterparts where the structure is deterministic.

use dp_spatial_suite::geom::{clip_segment_closed, LineSeg, Point, Rect};
use dp_spatial_suite::seq;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial_suite::spatial::rtree::build_rtree;
use dp_spatial_suite::workloads::{clustered_segments, road_network, uniform_segments, Dataset};
use scan_model::Machine;

fn workloads() -> Vec<Dataset> {
    vec![
        uniform_segments(250, 256, 24, 11),
        clustered_segments(250, 4, 10, 256, 12),
        road_network(12, 256, 13),
    ]
}

fn brute_window(segs: &[LineSeg], q: &Rect) -> Vec<u32> {
    (0..segs.len() as u32)
        .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
        .collect()
}

fn query_rects(world: &Rect) -> Vec<Rect> {
    let w = world.width();
    vec![
        Rect::from_coords(0.0, 0.0, w * 0.25, w * 0.25),
        Rect::from_coords(w * 0.4, w * 0.4, w * 0.6, w * 0.6),
        Rect::from_coords(0.0, 0.0, w, w),
        Rect::from_coords(w * 0.9, w * 0.05, w * 0.95, w * 0.1),
        Rect::from_coords(w * 0.33, 0.0, w * 0.34, w),
    ]
}

#[test]
fn all_structures_answer_window_queries_identically() {
    let machine = Machine::parallel();
    for data in workloads() {
        let segs = &data.segs;
        let pm1 = build_pm1(&machine, data.world, segs, 10);
        let bpmr = build_bucket_pmr(&machine, data.world, segs, 6, 10);
        let rt_mean = build_rtree(&machine, segs, 2, 6, RtreeSplitAlgorithm::Mean);
        let rt_sweep = build_rtree(&machine, segs, 2, 6, RtreeSplitAlgorithm::Sweep);
        let seq_pm1 = seq::pm1::Pm1Tree::build(data.world, segs, 10);
        let seq_bpmr = seq::bucket_pmr::BucketPmrTree::build(data.world, segs, 6, 10);
        let seq_pmr = seq::pmr::PmrTree::build(data.world, segs, 6, 10);
        let seq_rt = seq::rtree::RTree::build(segs, 2, 6, seq::rtree::SplitAlgorithm::Quadratic);

        for q in query_rects(&data.world) {
            let want = brute_window(segs, &q);
            assert_eq!(
                pm1.window_query(&q, segs),
                want,
                "{}: dp pm1 {q}",
                data.name
            );
            assert_eq!(
                bpmr.window_query(&q, segs),
                want,
                "{}: dp bpmr {q}",
                data.name
            );
            assert_eq!(
                rt_mean.window_query(&q, segs),
                want,
                "{}: dp rtree mean {q}",
                data.name
            );
            assert_eq!(
                rt_sweep.window_query(&q, segs),
                want,
                "{}: dp rtree sweep {q}",
                data.name
            );
            assert_eq!(
                seq_pm1.window_query(&q, segs),
                want,
                "{}: seq pm1 {q}",
                data.name
            );
            assert_eq!(
                seq_bpmr.window_query(&q, segs),
                want,
                "{}: seq bpmr {q}",
                data.name
            );
            assert_eq!(
                seq_pmr.window_query(&q, segs),
                want,
                "{}: seq pmr {q}",
                data.name
            );
            assert_eq!(
                seq_rt.window_query(&q, segs),
                want,
                "{}: seq rtree {q}",
                data.name
            );
        }
    }
}

#[test]
fn dp_and_seq_bucket_pmr_shapes_agree_on_all_workloads() {
    // The bucket PMR quadtree's shape depends only on the segment set, so
    // the simultaneous-insertion build and the one-at-a-time build must
    // produce the same decomposition.
    let machine = Machine::parallel();
    for data in workloads() {
        let dp = build_bucket_pmr(&machine, data.world, &data.segs, 6, 10);
        let sq = seq::bucket_pmr::BucketPmrTree::build(data.world, &data.segs, 6, 10);
        let dp_stats = dp.stats();
        let sq_stats = sq.stats();
        assert_eq!(dp_stats.leaves, sq_stats.leaves, "{}", data.name);
        assert_eq!(dp_stats.nodes, sq_stats.nodes, "{}", data.name);
        assert_eq!(dp_stats.height, sq_stats.height, "{}", data.name);
        assert_eq!(dp_stats.entries, sq_stats.entries, "{}", data.name);
    }
}

#[test]
fn dp_and_seq_pm1_shapes_agree_on_all_workloads() {
    // The PM1 quadtree is also uniquely determined by the segment set
    // (its splitting criterion is order-free).
    let machine = Machine::parallel();
    for data in workloads() {
        let dp = build_pm1(&machine, data.world, &data.segs, 10);
        let sq = seq::pm1::Pm1Tree::build(data.world, &data.segs, 10);
        let dp_stats = dp.stats();
        let sq_stats = sq.stats();
        assert_eq!(dp_stats.nodes, sq_stats.nodes, "{}", data.name);
        assert_eq!(dp_stats.leaves, sq_stats.leaves, "{}", data.name);
        assert_eq!(dp_stats.height, sq_stats.height, "{}", data.name);
        assert_eq!(dp_stats.entries, sq_stats.entries, "{}", data.name);
    }
}

#[test]
fn nearest_queries_match_brute_force_everywhere() {
    let machine = Machine::parallel();
    let data = uniform_segments(200, 256, 24, 21);
    let segs = &data.segs;
    let bpmr = build_bucket_pmr(&machine, data.world, segs, 6, 10);
    let rt = build_rtree(&machine, segs, 2, 6, RtreeSplitAlgorithm::Sweep);
    let seq_rt = seq::rtree::RTree::build(segs, 2, 6, seq::rtree::SplitAlgorithm::RStarAxis);
    let probes = [
        Point::new(0.0, 0.0),
        Point::new(128.0, 128.0),
        Point::new(255.0, 1.0),
        Point::new(17.0, 200.0),
        Point::new(100.0, 3.0),
    ];
    for p in probes {
        let brute = segs
            .iter()
            .map(|s| s.dist2_to_point(p).sqrt())
            .min_by(|a, b| a.total_cmp(b))
            .unwrap();
        assert_eq!(bpmr.nearest(p, segs).unwrap().1, brute, "bpmr at {p}");
        assert_eq!(rt.nearest(p, segs).unwrap().1, brute, "dp rtree at {p}");
        assert_eq!(
            seq_rt.nearest(p, segs).unwrap().1,
            brute,
            "seq rtree at {p}"
        );
    }
}

#[test]
fn point_queries_locate_crossing_segments() {
    let machine = Machine::parallel();
    let data = road_network(10, 256, 31);
    let segs = &data.segs;
    let bpmr = build_bucket_pmr(&machine, data.world, segs, 4, 10);
    let pm1 = build_pm1(&machine, data.world, segs, 10);
    // Probe each segment's midpoint: the containing block must list the
    // segment.
    for (id, s) in segs.iter().enumerate() {
        let mid = s.midpoint();
        if !data.world.contains_half_open(mid) {
            continue;
        }
        assert!(
            bpmr.point_query(mid).contains(&(id as u32)),
            "bpmr point query at {mid} misses segment {id}"
        );
        assert!(
            pm1.point_query(mid).contains(&(id as u32)),
            "pm1 point query at {mid} misses segment {id}"
        );
    }
}

#[test]
fn rtree_invariants_hold_on_all_workloads_and_orders() {
    let machine = Machine::parallel();
    for data in workloads() {
        for &(m, mx) in &[(1usize, 3usize), (2, 6), (4, 10)] {
            for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
                let t = build_rtree(&machine, &data.segs, m, mx, algo);
                t.check_invariants(&data.segs);
            }
        }
    }
}

#[test]
fn pm1_invariant_holds_on_all_workloads() {
    let machine = Machine::parallel();
    for data in workloads() {
        let t = build_pm1(&machine, data.world, &data.segs, 12);
        t.for_each_leaf(|rect, depth, ids| {
            if depth < 12 {
                assert!(
                    seq::pm1::pm1_block_valid(ids, &data.segs, rect),
                    "{}: invalid PM1 leaf {rect}",
                    data.name
                );
            }
        });
    }
}

#[test]
fn bucket_capacity_invariant_holds_on_all_workloads() {
    let machine = Machine::parallel();
    for data in workloads() {
        let cap = 5usize;
        let t = build_bucket_pmr(&machine, data.world, &data.segs, cap, 10);
        t.for_each_leaf(|_, depth, ids| {
            if depth < 10 {
                assert!(ids.len() <= cap, "{}: bucket over capacity", data.name);
            }
        });
    }
}
