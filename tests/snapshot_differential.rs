//! Snapshot round-trip and corruption differential suite.
//!
//! Three layers of guarantees over the `dp_spatial::snapshot` format
//! and the service's warm-restart path built on it:
//!
//! 1. **Bit-identity.** Every quadtree family and the packed R-tree
//!    round-trips through encode → decode on both backends, and
//!    re-encoding the decoded state reproduces the original bytes
//!    exactly. A proptest extends this to the full service: save →
//!    load → serve answers bit-identically to the live service the
//!    snapshot was taken from, across random worlds, write mixes and
//!    shard grids.
//! 2. **Corruption rejection.** Truncating the stream around every
//!    section boundary and flipping any single bit anywhere in the
//!    file must surface a typed [`SpatialError`] from validation —
//!    never a panic, never a silently wrong tree. (The exhaustive
//!    every-length truncation sweep lives in the core crate's unit
//!    tests; this suite covers the boundary neighbourhoods of a
//!    realistic multi-section service snapshot.)
//! 3. **Format compatibility.** A committed golden fixture
//!    (`tests/fixtures/service_v1.snap`) must decode warm and must be
//!    byte-identical to what the current encoder produces for the same
//!    deterministic build — so any format change, intentional or not,
//!    fails CI until the fixture (and `FORMAT_VERSION`) are bumped
//!    together. A committed stale-version fixture must be rejected with
//!    [`SpatialError::SnapshotVersionMismatch`], cleanly.
//!
//! Regenerate the fixtures after a deliberate format change with:
//! `REGEN_SNAPSHOT_FIXTURES=1 cargo test --test snapshot_differential`.

use dp_service::{QueryService, QueryServiceConfig, RecoveryAction, Response};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::pm1::{build_pm1, build_pm1_unfused};
use dp_spatial::pm_family::{build_pm2, build_pm3};
use dp_spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial::rtree::build_rtree;
use dp_spatial::snapshot::{
    crc32, decode_rtree_snapshot, decode_tree_snapshot, encode_rtree_snapshot,
    encode_tree_snapshot, SnapshotFamily, SnapshotReader, FORMAT_VERSION, HEADER_LEN,
};
use dp_spatial::SpatialError;
use dp_workloads::{restart_scenario, uniform_segments, Request};
use proptest::prelude::*;
use scan_model::{Backend, FaultPlan, Machine};
use std::path::PathBuf;
use std::sync::Arc;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn backends() -> Vec<(&'static str, Machine)> {
    vec![
        ("sequential", Machine::sequential()),
        ("parallel", Machine::parallel().with_par_threshold(1)),
    ]
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

// ---------------------------------------------------------------------
// 1. Bit-identity round trips, per family, per backend.
// ---------------------------------------------------------------------

/// Every quadtree family: build → encode → decode → compare node for
/// node, then re-encode and compare byte for byte. The decoded segments
/// must answer window queries identically to the originals.
#[test]
fn quadtree_families_round_trip_bit_identically() {
    let data = uniform_segments(300, 64, 8, 71);
    type Build =
        fn(&Machine, dp_geom::Rect, &[dp_geom::LineSeg], usize) -> dp_spatial::quadtree::DpQuadtree;
    let families: Vec<(SnapshotFamily, Build)> = vec![
        (SnapshotFamily::Pm1Fused, |m, w, s, d| build_pm1(m, w, s, d)),
        (SnapshotFamily::Pm1Unfused, |m, w, s, d| {
            build_pm1_unfused(m, w, s, d)
        }),
        (SnapshotFamily::Pm2, |m, w, s, d| build_pm2(m, w, s, d)),
        (SnapshotFamily::Pm3, |m, w, s, d| build_pm3(m, w, s, d)),
        (SnapshotFamily::BucketPmr, |m, w, s, d| {
            build_bucket_pmr(m, w, s, 4, d)
        }),
    ];
    for (family, build) in &families {
        for (name, machine) in backends() {
            let tree = build(&machine, data.world, &data.segs, 6);
            let bytes = encode_tree_snapshot(*family, &data.segs, &tree, None);
            let (got_family, got_segs, got_tree) = decode_tree_snapshot(&bytes)
                .unwrap_or_else(|e| panic!("{family:?}/{name}: clean snapshot rejected: {e}"));
            assert_eq!(got_family, *family, "{family:?}/{name}: family tag");
            assert_eq!(got_segs, data.segs, "{family:?}/{name}: segments");
            assert_eq!(got_tree, tree, "{family:?}/{name}: tree");
            let reencoded = encode_tree_snapshot(got_family, &got_segs, &got_tree, None);
            assert_eq!(
                reencoded, bytes,
                "{family:?}/{name}: re-encode is not byte-identical"
            );
        }
    }
}

/// The packed Hilbert R-tree round-trips under both split algorithms,
/// and the decoded tree answers window queries identically.
#[test]
fn rtree_round_trips_bit_identically() {
    let data = uniform_segments(300, 64, 8, 72);
    for (name, machine) in backends() {
        for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
            let tree = build_rtree(&machine, &data.segs, 2, 6, algo);
            let bytes = encode_rtree_snapshot(&data.segs, &tree, None);
            let (got_segs, got_tree) = decode_rtree_snapshot(&bytes)
                .unwrap_or_else(|e| panic!("rtree/{name}/{algo:?}: rejected: {e}"));
            assert_eq!(got_segs, data.segs, "rtree/{name}/{algo:?}: segments");
            assert_eq!(got_tree, tree, "rtree/{name}/{algo:?}: tree");
            let q = dp_geom::Rect::new(
                dp_geom::Point::new(8.0, 8.0),
                dp_geom::Point::new(40.0, 40.0),
            );
            assert_eq!(
                got_tree.window_query(&q, &got_segs),
                tree.window_query(&q, &data.segs),
                "rtree/{name}/{algo:?}: window answers diverge"
            );
            let reencoded = encode_rtree_snapshot(&got_segs, &got_tree, None);
            assert_eq!(reencoded, bytes, "rtree/{name}/{algo:?}: re-encode bytes");
        }
    }
}

// ---------------------------------------------------------------------
// 2. Corruption rejection: truncation + single-bit flips.
// ---------------------------------------------------------------------

/// A realistic multi-section service snapshot for the corruption
/// sweeps: four shards, live tombstones and a pending overlay ladder,
/// so every section kind the format defines is present.
fn corruption_subject() -> (QueryServiceConfig, dp_workloads::Dataset, Vec<u8>) {
    let data = uniform_segments(220, 64, 8, 73);
    let config = QueryServiceConfig {
        shard_grid: 2,
        flush_batch: 64,
        backend: Backend::Sequential,
        compact_threshold: usize::MAX >> 1,
        ..QueryServiceConfig::default()
    };
    let service = QueryService::build(config, data.world, data.segs.clone());
    let writes: Vec<Request> = data.segs[..10]
        .iter()
        .map(|&s| Request::Insert(s))
        .chain((0..6).map(|i| Request::Delete(i * 30)))
        .collect();
    service.execute_batch(&writes);
    let bytes = service.encode_snapshot().expect("clean service encodes");
    (config, data, bytes)
}

/// Truncating the stream at, just before, and just after every section
/// boundary (plus inside the header) always yields a typed error from
/// `SnapshotReader::parse` — validation happens before any allocation
/// sized from the damaged bytes.
#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let (_, _, bytes) = corruption_subject();
    let reader = SnapshotReader::parse(&bytes).expect("clean snapshot parses");
    let mut cuts: Vec<usize> = vec![0, 1, HEADER_LEN - 1, HEADER_LEN];
    for extent in reader.section_extents() {
        for at in [
            extent.start,
            extent.start + 1,
            extent.end - 1,
            extent.end.min(bytes.len() - 1),
        ] {
            cuts.push(at);
        }
    }
    drop(reader);
    cuts.sort_unstable();
    cuts.dedup();
    for at in cuts {
        if at >= bytes.len() {
            continue;
        }
        let torn = &bytes[..at];
        let err = SnapshotReader::parse(torn)
            .err()
            .unwrap_or_else(|| panic!("truncation to {at} bytes was accepted"));
        assert!(
            matches!(
                err,
                SpatialError::SnapshotCorrupt { .. } | SpatialError::SnapshotMalformed { .. }
            ),
            "truncation to {at} bytes: unexpected error {err}"
        );
    }
}

/// Flipping any single bit in the file is caught: the header CRC covers
/// the header, each section CRC covers its tag, length and payload, and
/// a flip inside a stored CRC disagrees with the recomputation. The
/// sweep walks every byte of the snapshot.
#[test]
fn any_single_bit_flip_is_rejected() {
    let (_, _, bytes) = corruption_subject();
    assert!(SnapshotReader::parse(&bytes).is_ok());
    let mut flipped = bytes.clone();
    for at in 0..bytes.len() {
        let bit = 1u8 << (at % 8);
        flipped[at] ^= bit;
        assert!(
            SnapshotReader::parse(&flipped).is_err(),
            "bit flip at byte {at} went undetected"
        );
        flipped[at] ^= bit;
    }
    assert_eq!(flipped, bytes, "sweep must restore the original bytes");
}

// ---------------------------------------------------------------------
// 3. Golden fixture compatibility gate.
// ---------------------------------------------------------------------

/// The deterministic build behind the committed golden fixture: a
/// sequential-backend service over a fixed-seed world with live
/// tombstones and a pending overlay ladder, so the fixture exercises
/// every section kind.
fn golden_config() -> QueryServiceConfig {
    QueryServiceConfig {
        shard_grid: 2,
        flush_batch: 64,
        backend: Backend::Sequential,
        compact_threshold: usize::MAX >> 1,
        ..QueryServiceConfig::default()
    }
}

fn golden_service() -> (dp_workloads::Dataset, QueryService) {
    let data = uniform_segments(60, 64, 8, 9);
    let service = QueryService::build(golden_config(), data.world, data.segs.clone());
    let writes: Vec<Request> = data.segs[..5]
        .iter()
        .map(|&s| Request::Insert(s))
        .chain((0..3).map(|i| Request::Delete(i * 17)))
        .collect();
    service.execute_batch(&writes);
    (data, service)
}

/// Bytes of the golden fixture with the header's format version patched
/// to `v` and the header CRC recomputed — a forged "old format" file
/// whose sections are otherwise intact.
fn with_version(bytes: &[u8], v: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[4..8].copy_from_slice(&v.to_le_bytes());
    let crc = crc32(&out[..HEADER_LEN - 4]);
    out[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
    out
}

/// The committed golden fixture is byte-identical to what the current
/// encoder produces for the same deterministic build. This is the
/// format-compatibility gate: any change to the layout, the codecs or
/// `FORMAT_VERSION` fails here until the fixtures are regenerated
/// (`REGEN_SNAPSHOT_FIXTURES=1 cargo test --test snapshot_differential`)
/// and reviewed together with the version bump.
#[test]
fn golden_fixture_matches_current_encoder() {
    let (_, service) = golden_service();
    let fresh = service.encode_snapshot().expect("golden service encodes");
    let golden = fixture_path("service_v1.snap");
    let stale = fixture_path("service_v0_stale.snap");
    if std::env::var("REGEN_SNAPSHOT_FIXTURES").is_ok() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&golden, &fresh).expect("write golden fixture");
        std::fs::write(&stale, with_version(&fresh, 0)).expect("write stale fixture");
        eprintln!("regenerated {} and {}", golden.display(), stale.display());
        return;
    }
    let committed = std::fs::read(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run REGEN_SNAPSHOT_FIXTURES=1 \
             cargo test --test snapshot_differential",
            golden.display()
        )
    });
    assert_eq!(
        committed, fresh,
        "golden fixture diverges from the current encoder (format version {FORMAT_VERSION}): \
         if the format change is deliberate, bump FORMAT_VERSION and regenerate the fixtures"
    );
}

/// The golden fixture decodes warm and the restored service answers a
/// probe stream bit-identically to the live service it was taken from.
#[test]
fn golden_fixture_warm_restores_and_serves() {
    let (data, live) = golden_service();
    let path = fixture_path("service_v1.snap");
    let (restored, warm) = QueryService::try_restore_or_build(
        golden_config(),
        data.world,
        data.segs.clone(),
        Vec::new(),
        Arc::new(FaultPlan::disabled()),
        &path,
    )
    .expect("golden fixture restores");
    assert!(warm, "golden fixture must restore warm, not rebuild cold");
    let probes =
        dp_workloads::request_stream(data.world, 60, dp_workloads::RequestMix::default(), 91);
    assert_eq!(
        restored.execute_batch(&probes),
        live.execute_batch(&probes),
        "restored service diverges from the live one"
    );
}

/// A fixture written by a past format version is rejected with the
/// typed [`SpatialError::SnapshotVersionMismatch`] — and the service
/// restart ladder degrades it to a cold rebuild instead of panicking.
#[test]
fn stale_version_fixture_is_rejected_cleanly() {
    let path = fixture_path("service_v0_stale.snap");
    let stale = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing stale fixture {} ({e}); run REGEN_SNAPSHOT_FIXTURES=1 \
             cargo test --test snapshot_differential",
            path.display()
        )
    });
    match SnapshotReader::parse(&stale) {
        Err(SpatialError::SnapshotVersionMismatch { found, expected }) => {
            assert_eq!(found, 0);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("stale fixture must fail with a version mismatch, got {other:?}"),
    }

    let (data, live) = golden_service();
    let (restored, warm) = QueryService::try_restore_or_build(
        golden_config(),
        data.world,
        data.segs.clone(),
        Vec::new(),
        Arc::new(FaultPlan::disabled()),
        &path,
    )
    .expect("version mismatch must degrade to a cold rebuild, not fail");
    assert!(!warm, "a stale fixture cannot restore warm");
    let cold_restarts: Vec<_> = restored
        .recovery_events()
        .into_iter()
        .filter(|e| e.action == RecoveryAction::ColdRestart)
        .collect();
    assert_eq!(cold_restarts.len(), 1, "exactly one ColdRestart event");
    assert!(
        matches!(
            cold_restarts[0].error,
            SpatialError::SnapshotVersionMismatch { found: 0, .. }
        ),
        "the event must carry the typed cause, got {}",
        cold_restarts[0].error
    );
    // The cold fallback still serves correctly: reads match a live
    // service over the base segments (the fallback input carries no
    // overlay writes, so compare against a freshly built base service).
    drop(live);
    let base = QueryService::build(golden_config(), data.world, data.segs.clone());
    let probes =
        dp_workloads::request_stream(data.world, 40, dp_workloads::RequestMix::default(), 92);
    assert_eq!(restored.execute_batch(&probes), base.execute_batch(&probes));
}

// ---------------------------------------------------------------------
// 4. Property: save → load → serve ≡ keep-serving.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Across random worlds, write loads and shard grids, on both
    /// backends: snapshotting a service mid-life and restoring it in a
    /// "new process" (fresh `QueryService` from the file) answers the
    /// post-restart probe stream bit-identically to the original
    /// instance that never restarted.
    #[test]
    fn save_load_serve_equals_keep_serving(
        seed in 0u64..1u64 << 16,
        n in 80usize..240,
        writes in 0usize..40,
    ) {
        // The shimmed proptest has no bool strategy; derive the backend
        // choice from the seed so both still get even coverage.
        let parallel = seed & 1 == 1;
        let scenario = restart_scenario(
            dp_workloads::square_world(64),
            writes,
            60,
            seed,
            n,
        );
        let data = uniform_segments(n, 64, 8, seed ^ 0xabcd);
        let config = QueryServiceConfig {
            shard_grid: 2,
            flush_batch: 64,
            backend: if parallel { Backend::Parallel } else { Backend::Sequential },
            par_threshold: if parallel { Some(1) } else { None },
            compact_threshold: usize::MAX >> 1,
            ..QueryServiceConfig::default()
        };
        let live = QueryService::build(config, data.world, data.segs.clone());
        let before: Vec<Response> = live.execute_batch(&scenario.before);
        prop_assert!(!before.is_empty() || scenario.before.is_empty());

        let path = std::env::temp_dir().join(format!(
            "snapshot_differential_{}_{seed}.snap",
            std::process::id()
        ));
        live.save_snapshot(&path).expect("mid-life service saves");
        let (restored, warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &path,
        ).expect("snapshot restores");
        let _ = std::fs::remove_file(&path);
        prop_assert!(warm, "clean snapshot must restore warm");

        let after_live = live.execute_batch(&scenario.after);
        let after_restored = restored.execute_batch(&scenario.after);
        prop_assert_eq!(after_live, after_restored);
        prop_assert_eq!(live.segments(), restored.segments());
    }
}
