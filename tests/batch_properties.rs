//! Property and complexity tests for the batch (lockstep) query engine.
//!
//! * For arbitrary trees and windows — empty, degenerate, boundary-
//!   aligned and world-spanning included — the batched candidate phase
//!   must agree with the per-query traversal, and the full batched query
//!   with brute force.
//! * The complexity contract of the lockstep descent (paper Sec. 4):
//!   a batch over a depth-`d` tree issues `d` primitive *rounds*, each a
//!   constant number of scans — independent of how many queries ride in
//!   the batch.

use dp_spatial_suite::geom::{clip_segment_closed, LineSeg, Point, Rect};
use dp_spatial_suite::spatial::batch::{batch_window_candidates, batch_window_query};
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use proptest::prelude::*;
use scan_model::{Backend, Machine};

const WORLD_SIZE: i32 = 64;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD_SIZE as f64, WORLD_SIZE as f64)
}

fn segments() -> impl Strategy<Value = Vec<LineSeg>> {
    prop::collection::vec(
        (0..WORLD_SIZE, 0..WORLD_SIZE, 0..WORLD_SIZE, 0..WORLD_SIZE),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .filter(|&(ax, ay, bx, by)| (ax, ay) != (bx, by))
            .map(|(ax, ay, bx, by)| {
                LineSeg::from_coords(ax as f64, ay as f64, bx as f64, by as f64)
            })
            .collect::<Vec<_>>()
    })
    .prop_filter("need at least one segment", |v| !v.is_empty())
}

/// Windows across the full shape spectrum: ordinary boxes, degenerate
/// points, segments of zero width or height, the whole world, rectangles
/// hanging past the world edge, and the formally empty rectangle.
fn windows() -> impl Strategy<Value = Rect> {
    (
        0u8..7,
        0..WORLD_SIZE,
        0..WORLD_SIZE,
        1..WORLD_SIZE,
        1..WORLD_SIZE,
    )
        .prop_map(|(kind, x, y, w, h)| {
            let (x, y, w, h) = (x as f64, y as f64, w as f64, h as f64);
            let size = WORLD_SIZE as f64;
            match kind {
                0 => Rect::empty(),
                1 => Rect::point(Point::new(x, y)),
                2 => Rect::from_coords(x, y, (x + w).min(size), y), // zero height
                3 => Rect::from_coords(x, y, x, (y + h).min(size)), // zero width
                4 => Rect::from_coords(0.0, 0.0, size, size),       // world-spanning
                5 => Rect::from_coords(x, y, x + w, y + h),         // may exceed world
                _ => Rect::from_coords(x, y, (x + w).min(size), (y + h).min(size)),
            }
        })
}

fn brute(segs: &[LineSeg], q: &Rect) -> Vec<u32> {
    (0..segs.len() as u32)
        .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lockstep candidate phase equals the per-query traversal for
    /// every window shape, on both backends.
    #[test]
    fn batch_candidates_match_traversal(
        segs in segments(),
        qs in prop::collection::vec(windows(), 0..12),
        cap in 1usize..5,
    ) {
        for machine in [
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ] {
            let tree = build_bucket_pmr(&machine, world(), &segs, cap, 8);
            let batched = batch_window_candidates(&machine, &tree, &qs);
            prop_assert_eq!(batched.len(), qs.len());
            for (q, got) in qs.iter().zip(&batched) {
                prop_assert_eq!(got, &tree.window_candidates(q), "window {}", q);
            }
        }
    }

    /// The full batched query (candidates + exact filter) equals brute
    /// force for every window shape.
    #[test]
    fn batch_query_matches_brute_force(
        segs in segments(),
        qs in prop::collection::vec(windows(), 1..10),
    ) {
        let machine = Machine::parallel();
        let tree = build_bucket_pmr(&machine, world(), &segs, 3, 8);
        let batched = batch_window_query(&machine, &tree, &qs, &segs);
        for (q, got) in qs.iter().zip(&batched) {
            prop_assert_eq!(got, &brute(&segs, q), "window {}", q);
        }
    }
}

/// The descent issues exactly `height` rounds when some window reaches
/// the deepest leaf, and the primitive count per round is a constant —
/// the whole point of lockstep batching: op totals do not grow with the
/// number of queries in the batch.
#[test]
fn batch_descent_is_height_rounds_constant_scans() {
    let machine = Machine::sequential();
    let segs: Vec<LineSeg> = (0..80)
        .map(|k| {
            let x = ((k * 13) % 60) as f64;
            let y = ((k * 29) % 60) as f64;
            LineSeg::from_coords(x, y, (x + 3.0).min(63.0), (y + 2.0).min(63.0))
        })
        .collect();
    let tree = build_bucket_pmr(&machine, world(), &segs, 2, 8);
    let height = tree.stats().height;
    assert!(height >= 3, "tree too shallow for the claim: {height}");

    // Both batches include the world window, so the frontier reaches the
    // deepest leaf and the descent runs exactly `height` rounds.
    let small: Vec<Rect> = std::iter::once(world())
        .chain((0..3).map(|k| {
            let x = (k * 16) as f64;
            Rect::from_coords(x, x, x + 8.0, x + 8.0)
        }))
        .collect();
    let large: Vec<Rect> = std::iter::once(world())
        .chain((0..255).map(|k| {
            let x = ((k * 7) % 56) as f64;
            let y = ((k * 11) % 56) as f64;
            Rect::from_coords(x, y, x + 6.0, y + 6.0)
        }))
        .collect();

    machine.reset_stats();
    let base = machine.stats();
    let _ = batch_window_query(&machine, &tree, &small, &segs);
    let small_ops = machine.stats().since(&base);

    let base = machine.stats();
    let _ = batch_window_query(&machine, &tree, &large, &segs);
    let large_ops = machine.stats().since(&base);

    // O(d) rounds: exactly the tree height, for 4 and for 256 queries.
    assert_eq!(small_ops.rounds, height as u64, "rounds {small_ops:?}");
    assert_eq!(large_ops.rounds, height as u64, "rounds {large_ops:?}");

    // O(1) primitives per round: the sequence of primitive invocations
    // per level is fixed, so 64× more queries must not change any
    // primitive counter at all. (`allocs_avoided` is excluded: whether a
    // recycled buffer's capacity covers a lease depends on the lane
    // counts, which do scale with batch width. `bytes_moved` is excluded
    // for the same reason: it measures data volume, which is exactly what
    // grows with the batch.)
    let ops_only = |s: &scan_model::StatsSnapshot| {
        let mut s = *s;
        s.allocs_avoided = 0;
        s.bytes_moved = 0;
        s
    };
    assert_eq!(
        ops_only(&small_ops),
        ops_only(&large_ops),
        "op counts grew with batch width"
    );

    // And the constant is small: a handful of scans per level.
    assert!(
        small_ops.scans <= 12 * small_ops.rounds + 4,
        "scans per round not constant-bounded: {small_ops:?}"
    );
    assert!(
        small_ops.total_primitives() <= 40 * small_ops.rounds + 10,
        "primitives per round not constant-bounded: {small_ops:?}"
    );
}

/// Queries that die at the root (outside the world, or the empty
/// rectangle) cost zero descent rounds.
#[test]
fn missing_windows_cost_no_rounds() {
    let machine = Machine::sequential();
    let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
    let tree = build_bucket_pmr(&machine, world(), &segs, 1, 8);
    machine.reset_stats();
    let out = batch_window_query(
        &machine,
        &tree,
        &[Rect::from_coords(100.0, 100.0, 120.0, 120.0), Rect::empty()],
        &segs,
    );
    assert_eq!(out, vec![Vec::<u32>::new(), Vec::new()]);
    assert_eq!(machine.stats().rounds, 0);
    assert_eq!(machine.stats().scans, 0);
}
