//! Figure-level reproduction tests: one test per structural claim the
//! paper makes about its running examples (experiments E08–E18 of
//! `DESIGN.md`). The dataset is the reconstruction in
//! `dp_workloads::paper` — the paper prints no coordinates, so these
//! tests pin the *described events*, not pixel-identical trees.

use dp_spatial_suite::geom::{Point, Rect};
use dp_spatial_suite::seq;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::join::{brute_force_join, spatial_join};
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial_suite::spatial::rtree::build_rtree;
use dp_spatial_suite::workloads::{paper_dataset, paper_world, pathological_close_vertices};
use scan_model::Machine;

/// E11 / Fig. 1: the PM₁ quadtree of the paper dataset — every leaf obeys
/// the vertex rule; the shared c/d/i vertex block holds exactly those
/// three lines.
#[test]
fn fig01_pm1_paper_dataset() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let t = build_pm1(&machine, paper_world(), &segs, 8);
    assert_eq!(t.truncated(), 0);
    t.for_each_leaf(|rect, _, ids| {
        assert!(seq::pm1::pm1_block_valid(ids, &segs, rect));
    });
    // The block containing the shared vertex holds exactly c, d, i
    // (region "A" of the paper's Fig. 1 discussion).
    let at_shared = t.point_query(Point::new(1.0, 6.0));
    assert_eq!(at_shared, vec![2, 3, 8]);
}

/// E12 / Fig. 2: inserting a segment whose vertex is close to an existing
/// vertex forces a cascade of subdivisions creating many empty nodes.
#[test]
fn fig02_pm1_pathology() {
    let machine = Machine::parallel();
    // A large world exaggerates the effect, as in the figure.
    let data = pathological_close_vertices(64);
    let single = vec![data.segs[0]];
    let t1 = build_pm1(&machine, data.world, &single, 12);
    let t2 = build_pm1(&machine, data.world, &data.segs, 12);
    let (s1, s2) = (t1.stats(), t2.stats());
    // Separating vertices at distance 1 in a 64-wide world requires depth
    // 6; the pair tree is much deeper and has many more (mostly empty)
    // nodes.
    assert!(s2.height >= 6, "height {}", s2.height);
    assert!(s2.nodes > s1.nodes + 8);
    assert!(s2.empty_leaves > s1.empty_leaves);
    assert_eq!(t2.truncated(), 0);
}

/// E13 / Figs. 3, 34: the classic PMR quadtree's shape depends on
/// insertion order; the bucket PMR quadtree's does not.
#[test]
fn fig34_pmr_order_dependence_vs_bucket_independence() {
    let world = paper_world();
    let segs = vec![
        dp_spatial_suite::geom::LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),
        dp_spatial_suite::geom::LineSeg::from_coords(1.0, 2.0, 2.0, 3.0),
        dp_spatial_suite::geom::LineSeg::from_coords(5.0, 5.0, 6.0, 6.0),
        dp_spatial_suite::geom::LineSeg::from_coords(1.0, 3.0, 2.0, 1.0),
    ];
    // Classic PMR: two insertion orders, two shapes.
    let t1 = seq::pmr::PmrTree::build(world, &segs, 2, 6);
    let mut t2 = seq::pmr::PmrTree::new(world, 2, 6);
    for &id in &[0u32, 1, 3, 2] {
        t2.insert(id, &segs);
    }
    assert_ne!(t1.shape_signature(), t2.shape_signature());

    // Bucket PMR: any order, one shape.
    let b1 = seq::bucket_pmr::BucketPmrTree::build(world, &segs, 2, 6);
    let mut b2 = seq::bucket_pmr::BucketPmrTree::new(world, 2, 6);
    for &id in &[3u32, 2, 1, 0] {
        b2.insert(id, &segs);
    }
    assert_eq!(b1.shape_signature(), b2.shape_signature());
}

/// E14 / Fig. 4: the bucket PMR quadtree (capacity 2, maximal height 3)
/// subdivides the shared-vertex region to the maximal depth and leaves it
/// over capacity.
#[test]
fn fig04_bucket_pmr_paper_dataset() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let t = build_bucket_pmr(&machine, paper_world(), &segs, 2, 3);
    assert_eq!(t.stats().height, 3, "subdivides to the maximal height");
    assert!(
        t.truncated() >= 1,
        "an over-capacity bucket survives at max depth"
    );
    // The surviving over-capacity bucket is the shared-vertex block.
    let over = t.point_query(Point::new(1.0, 6.0));
    assert!(
        over.len() > 2,
        "shared vertex block holds c, d, i: {over:?}"
    );
    // Everything is retrievable.
    assert_eq!(
        t.window_query(&paper_world(), &segs),
        (0..9).collect::<Vec<u32>>()
    );
}

/// E15 / Fig. 5: an order (2,3) R-tree over the paper's nine segments —
/// every segment in exactly one leaf, fanout within bounds, all leaves at
/// one level.
#[test]
fn fig05_rtree_paper_dataset() {
    let segs = paper_dataset();
    let t = seq::rtree::RTree::build(&segs, 2, 3, seq::rtree::SplitAlgorithm::Quadratic);
    t.check_invariants(&segs, segs.len());
    assert!(t.height() >= 1);
    // R-tree is non-disjoint: a window query may visit several nodes yet
    // each segment is stored once.
    assert_eq!(t.stats().entries, 9);
}

/// E15 / Fig. 6: the coverage-minimizing and overlap-minimizing split
/// goals diverge; on a road-map workload the overlap-directed R*-style
/// split produces substantially less sibling overlap than Guttman's
/// area-directed quadratic split.
#[test]
fn fig06_split_goals() {
    let data = dp_spatial_suite::workloads::road_network(20, 512, 3);
    let quad = seq::rtree::RTree::build(&data.segs, 2, 6, seq::rtree::SplitAlgorithm::Quadratic);
    let rstar = seq::rtree::RTree::build(&data.segs, 2, 6, seq::rtree::SplitAlgorithm::RStarAxis);
    let (_, ov_quad) = quad.quality_metrics();
    let (_, ov_rstar) = rstar.quality_metrics();
    assert!(
        ov_rstar < ov_quad,
        "R*-axis overlap {ov_rstar} should beat quadratic {ov_quad}"
    );
}

/// E16 / Figs. 30–33: the data-parallel PM₁ build proceeds in iterative
/// subdivision rounds; the first round splits the root and clones the
/// axis-crossing lines a, b and i.
#[test]
fn fig30_33_pm1_rounds() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let t = build_pm1(&machine, paper_world(), &segs, 8);
    // Multiple rounds (the paper's example needs 3 at its coordinates;
    // the reconstruction needs at least that).
    assert!(t.rounds() >= 3, "rounds {}", t.rounds());
    assert!(t.rounds() <= 8);
    // After round 1 the four quadrants exist: the root must be internal
    // and lines a (0), b (1), i (8) appear in more than one quadrant
    // subtree (they were cloned).
    let quads = paper_world().quadrants();
    for &cloned in &[0u32, 1, 8] {
        let mut appearances = 0;
        for q in &quads {
            if !t.window_candidates(q).iter().all(|&id| id != cloned) {
                appearances += 1;
            }
        }
        assert!(appearances >= 2, "line {cloned} must span quadrants");
    }
}

/// E17 / Figs. 35–38: the bucket PMR build runs three subdivision rounds
/// on the example dataset (capacity 2, maximal height 3) and terminates
/// with an over-capacity node at maximal resolution.
#[test]
fn fig35_38_bpmr_rounds() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let t = build_bucket_pmr(&machine, paper_world(), &segs, 2, 3);
    assert_eq!(t.rounds(), 3, "Figs. 35-38 show exactly three rounds");
    assert!(t.truncated() >= 1, "Fig. 38's node 9 remains over capacity");
}

/// E18 / Figs. 39–44: the data-parallel R-tree build on nine lines with
/// order (1,3): root split, upward propagation, termination with every
/// node holding at most M children.
#[test]
fn fig39_44_rtree_build() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
        let t = build_rtree(&machine, &segs, 1, 3, algo);
        t.check_invariants(&segs);
        // Nine entries with M = 3 need at least ceil(9/3) = 3 leaves and
        // at least two levels; the paper's run ends at three levels
        // (N0, N1, N2).
        assert!(t.stats().leaves >= 3, "{algo:?}");
        assert!(t.height() >= 1, "{algo:?}");
        assert_eq!(t.stats().entries, 9, "{algo:?}");
        // Termination means no node exceeds M = 3 — check_invariants
        // asserted it; also the build took multiple rounds (root split
        // plus propagation).
        assert!(t.rounds() >= 2, "{algo:?}: rounds {}", t.rounds());
    }
}

/// The spatial join built from the paper's primitives agrees with the
/// brute-force overlay on the paper dataset joined with itself.
#[test]
fn paper_dataset_self_join() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let t = build_bucket_pmr(&machine, paper_world(), &segs, 2, 4);
    let got = spatial_join(&t, &segs, &t, &segs);
    let want = brute_force_join(&segs, &segs);
    assert_eq!(got, want);
    // c, d and i share a vertex, so all three pairwise pairs intersect.
    for pair in [(2u32, 3u32), (2, 8), (3, 8)] {
        assert!(got.contains(&pair), "missing {pair:?}");
    }
}

/// Window queries over each quadrant of the paper world return exactly
/// the lines the reconstruction places there (cross-checked against
/// brute force).
#[test]
fn paper_dataset_quadrant_queries() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let pm1 = build_pm1(&machine, paper_world(), &segs, 8);
    for q in paper_world().quadrants() {
        let got = pm1.window_query(&q, &segs);
        let want: Vec<u32> = (0..segs.len() as u32)
            .filter(|&id| {
                dp_spatial_suite::geom::clip_segment_closed(&segs[id as usize], &q).is_some()
            })
            .collect();
        assert_eq!(got, want, "quadrant {q}");
    }
}

/// The world rectangle itself: a degenerate "window" that must return
/// every line from every structure.
#[test]
fn full_window_returns_everything() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let all: Vec<u32> = (0..9).collect();
    let w = paper_world();
    assert_eq!(
        build_pm1(&machine, w, &segs, 8).window_query(&w, &segs),
        all
    );
    assert_eq!(
        build_bucket_pmr(&machine, w, &segs, 2, 6).window_query(&w, &segs),
        all
    );
    assert_eq!(
        build_rtree(&machine, &segs, 1, 3, RtreeSplitAlgorithm::Sweep).window_query(&w, &segs),
        all
    );
}

/// Rect sanity for the E14 truncation claim: a bigger capacity removes
/// the truncation entirely.
#[test]
fn fig04_truncation_disappears_with_capacity_three() {
    let machine = Machine::parallel();
    let segs = paper_dataset();
    let t = build_bucket_pmr(&machine, paper_world(), &segs, 3, 3);
    assert_eq!(t.truncated(), 0, "capacity 3 fits the shared vertex");
    let _ = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
}
