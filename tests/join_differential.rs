//! Differential and complexity tests for the data-parallel frontier
//! spatial join: across every workload family and on both scan-model
//! backends, `frontier_join` must produce the bit-identical sorted pair
//! set of the recursive co-traversal oracle and the all-pairs brute
//! force; its round count must stay within the paper's
//! `max(depth(a), depth(b)) + 1` bound; and every join round must issue
//! an n-independent constant number of scan-model primitives.

use dp_spatial_suite::geom::LineSeg;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::join::{
    brute_force_join, frontier_join, try_spatial_join, JoinOutcome,
};
use dp_spatial_suite::spatial::quadtree::DpQuadtree;
use dp_spatial_suite::workloads::{
    clustered_segments, paper_dataset, paper_world, polygon_rings, road_network, uniform_segments,
    Dataset,
};
use proptest::prelude::*;
use scan_model::{Backend, Machine, RoundTrace};

/// Both backends; the parallel machine forces `par_threshold = 1` so the
/// rayon code paths run even on the small differential datasets.
fn machines() -> Vec<Machine> {
    vec![
        Machine::sequential(),
        Machine::new(Backend::Parallel).with_par_threshold(1),
    ]
}

/// Base/overlay layer pairs covering every workload family plus the
/// degenerate shapes the acceptance criterion names: empty trees on
/// either side and single-leaf (root-only) trees.
fn layer_pairs() -> Vec<(Dataset, Vec<LineSeg>)> {
    let overlay64 = |seed: u64| uniform_segments(180, 64, 8, seed).segs;
    let mut cases = vec![
        (uniform_segments(250, 64, 8, 201), overlay64(301)),
        (clustered_segments(220, 8, 10, 64, 202), overlay64(302)),
        (road_network(8, 64, 203), overlay64(303)),
        (polygon_rings(6, 64, 204), overlay64(304)),
        (
            Dataset {
                name: "paper 9-segment example".to_string(),
                world: paper_world(),
                segs: paper_dataset(),
            },
            uniform_segments(24, 8, 2, 305).segs,
        ),
    ];
    // Self-join: both layers are the same collection.
    let uni = uniform_segments(160, 64, 8, 205);
    let self_segs = uni.segs.clone();
    cases.push((uni, self_segs));
    // Empty overlay and empty base.
    cases.push((uniform_segments(100, 64, 8, 206), Vec::new()));
    cases.push((
        Dataset {
            name: "empty base".to_string(),
            world: uniform_segments(1, 64, 8, 207).world,
            segs: Vec::new(),
        },
        overlay64(306),
    ));
    cases
}

fn check_pair(data: &Dataset, overlay: &[LineSeg], m: &Machine, capacity: usize, depth: usize) {
    let ta = build_bucket_pmr(m, data.world, &data.segs, capacity, depth);
    let tb = build_bucket_pmr(m, data.world, overlay, capacity, depth);
    let recursive = try_spatial_join(&ta, &data.segs, &tb, overlay).expect("same world");
    let brute = brute_force_join(&data.segs, overlay);
    assert_eq!(recursive, brute, "[{}] recursive vs brute force", data.name);

    let out = frontier_join(m, &ta, &data.segs, &tb, overlay).expect("same world");
    assert_eq!(out.pairs, brute, "[{}] frontier vs brute force", data.name);
    let bound = ta.stats().height.max(tb.stats().height) + 1;
    assert!(
        out.rounds <= bound,
        "[{}] {} rounds exceeds depth bound {bound}",
        data.name,
        out.rounds
    );
    if data.segs.is_empty() || overlay.is_empty() {
        assert_eq!(
            out.pairs_tested, 0,
            "[{}] empty side tested pairs",
            data.name
        );
    }
}

#[test]
fn every_family_frontier_matches_recursive_and_brute_force() {
    for (data, overlay) in layer_pairs() {
        for m in machines() {
            check_pair(&data, &overlay, &m, 8, 12);
        }
    }
}

/// Single-leaf trees: a capacity large enough that both roots stay
/// leaves, so the frontier retires in the very first round.
#[test]
fn single_leaf_trees_join_in_one_round() {
    let data = uniform_segments(40, 64, 8, 210);
    let overlay = uniform_segments(30, 64, 8, 211).segs;
    for m in machines() {
        let ta = build_bucket_pmr(&m, data.world, &data.segs, 1024, 12);
        let tb = build_bucket_pmr(&m, data.world, &overlay, 1024, 12);
        assert_eq!(ta.stats().height, 0, "base root must stay a leaf");
        assert_eq!(tb.stats().height, 0, "overlay root must stay a leaf");
        let out = frontier_join(&m, &ta, &data.segs, &tb, &overlay).expect("same world");
        assert_eq!(out.pairs, brute_force_join(&data.segs, &overlay));
        assert!(out.rounds <= 1, "leaf×leaf took {} rounds", out.rounds);
        check_pair(&data, &overlay, &m, 1024, 12);
    }
}

/// Runs one traced frontier join on a quiet dedicated machine (nothing
/// else touches its counters) and returns the outcome plus the join's
/// own round table.
fn traced_join(n: usize, m: &Machine) -> (JoinOutcome, Vec<RoundTrace>, DpQuadtree, DpQuadtree) {
    let base = uniform_segments(n, 256, 8, 220);
    let overlay = uniform_segments(n, 256, 8, 221).segs;
    let ta = build_bucket_pmr(m, base.world, &base.segs, 8, 12);
    let tb = build_bucket_pmr(m, base.world, &overlay, 8, 12);
    m.take_round_traces(); // drop the two build traces
    m.reset_stats();
    let out = frontier_join(m, &ta, &base.segs, &tb, &overlay).expect("same world");
    let trace = m.take_round_traces();
    (out, trace, ta, tb)
}

/// The paper's complexity claim, checked through op-counter deltas: each
/// join round costs a constant number of scan-model primitives —
/// independent of both the frontier width and the collection size — and
/// the number of rounds is bounded by the deeper tree's depth.
#[test]
fn join_rounds_cost_constant_primitives() {
    for m in machines() {
        // The distinct per-round primitive profiles of the *splitting*
        // rounds, at two collection sizes an order of magnitude apart.
        let mut profiles: Vec<Vec<(u64, u64, u64, u64)>> = Vec::new();
        for n in [300usize, 3_000] {
            let (out, trace, ta, tb) = traced_join(n, &m);
            let bound = ta.stats().height.max(tb.stats().height) + 1;
            assert!(out.rounds <= bound, "{} rounds > bound {bound}", out.rounds);
            assert!(
                out.rounds >= 3,
                "need a multi-round join, got {}",
                out.rounds
            );
            let split_rounds: Vec<(u64, u64, u64, u64)> = trace
                .iter()
                .filter(|t| t.nodes_split > 0)
                .map(|t| (t.scans, t.scan_passes, t.elementwise, t.permutes))
                .collect();
            assert_eq!(
                split_rounds.len(),
                out.rounds,
                "one completed trace row per join round"
            );
            for (i, &(scans, passes, ew, permutes)) in split_rounds.iter().enumerate() {
                assert!(scans <= 16, "round {i}: {scans} scans");
                assert!(passes <= 16, "round {i}: {passes} scan passes");
                assert!(ew <= 32, "round {i}: {ew} elementwise ops");
                assert!(permutes <= 16, "round {i}: {permutes} permutes");
            }
            // Constant across rounds: a round is either pure expansion
            // (every test block still ambiguous, so emission short-
            // circuits) or expansion plus emission, and each flavor
            // issues the exact same primitive mix however wide the
            // frontier got. Two distinct profiles, nothing in between.
            let mut distinct = split_rounds.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(
                distinct.len() <= 2,
                "per-round primitive profile drifted: {distinct:?}"
            );
            profiles.push(distinct);
        }
        // Constant across sizes: 10× the data, same per-round costs.
        assert_eq!(
            profiles[0], profiles[1],
            "per-round primitive profiles depend on n"
        );
    }
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Fisher–Yates over `0..n` driven by a splitmix64 stream, so proptest
/// only has to supply the seed.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, next() as usize % (i + 1));
    }
    perm
}

/// Two random layers over one world, plus a random permutation of the
/// base layer's segment IDs.
fn layer_strategy() -> impl Strategy<Value = (Vec<LineSeg>, Vec<LineSeg>, Vec<usize>)> {
    (4usize..48, 2usize..40, 0u64..1 << 16, 0u64..1 << 16).prop_map(|(na, nb, sa, sb)| {
        let a = uniform_segments(na, 64, 8, sa).segs;
        let b = uniform_segments(nb, 64, 8, sb).segs;
        (a, b, permutation(na, sa ^ (sb << 17)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// join(a, b) is the transpose of join(b, a), on both backends.
    #[test]
    fn join_is_symmetric_under_transpose((a, b, _) in layer_strategy()) {
        let world = uniform_segments(1, 64, 8, 0).world;
        for m in machines() {
            let ta = build_bucket_pmr(&m, world, &a, 4, 8);
            let tb = build_bucket_pmr(&m, world, &b, 4, 8);
            let ab = frontier_join(&m, &ta, &a, &tb, &b).expect("same world");
            let ba = frontier_join(&m, &tb, &b, &ta, &a).expect("same world");
            let mut transposed: Vec<(u32, u32)> =
                ba.pairs.iter().map(|&(x, y)| (y, x)).collect();
            transposed.sort_unstable();
            prop_assert_eq!(&ab.pairs, &transposed);
            prop_assert_eq!(ab.pairs_tested, ba.pairs_tested);
        }
    }

    /// Relabeling the base layer's segment IDs permutes the reported
    /// pairs and nothing else: the joined *geometry* is invariant.
    #[test]
    fn join_is_invariant_under_segment_permutation((a, b, perm) in layer_strategy()) {
        let world = uniform_segments(1, 64, 8, 0).world;
        let permuted: Vec<LineSeg> = perm.iter().map(|&i| a[i]).collect();
        for m in machines() {
            let ta = build_bucket_pmr(&m, world, &a, 4, 8);
            let tp = build_bucket_pmr(&m, world, &permuted, 4, 8);
            let tb = build_bucket_pmr(&m, world, &b, 4, 8);
            let original = frontier_join(&m, &ta, &a, &tb, &b).expect("same world");
            let relabeled = frontier_join(&m, &tp, &permuted, &tb, &b).expect("same world");
            // Map the relabeled pairs back through the permutation.
            let mut mapped: Vec<(u32, u32)> = relabeled
                .pairs
                .iter()
                .map(|&(i, y)| (perm[i as usize] as u32, y))
                .collect();
            mapped.sort_unstable();
            prop_assert_eq!(&original.pairs, &mapped);
        }
    }
}
