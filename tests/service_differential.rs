//! Differential tests for the sharded query service: for every workload
//! family and on both scan-model backends, the service must answer
//! byte-identically to (a) one unsharded machine running
//! `batch_window_query` over the whole collection and (b) the
//! brute-force scan — and its routing layer must execute a request on
//! exactly the shards whose tiles it overlaps, merging without
//! duplicates.

use dp_spatial_suite::geom::{clip_segment_closed, LineSeg, Point, Rect};
use dp_spatial_suite::service::{brute_knearest, QueryService, QueryServiceConfig, Response};
use dp_spatial_suite::spatial::batch::batch_window_query;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::shard::ShardGrid;
use dp_spatial_suite::spatial::SegId;
use dp_spatial_suite::workloads::{
    clustered_segments, paper_dataset, paper_world, pathological_close_vertices, polygon_rings,
    request_stream, road_network, uniform_segments, Dataset, Request, RequestMix,
};
use proptest::prelude::*;
use scan_model::{Backend, Machine};

/// Every workload family, sized for exhaustive brute-force checking.
fn families() -> Vec<Dataset> {
    vec![
        uniform_segments(250, 64, 8, 101),
        clustered_segments(220, 8, 10, 64, 102),
        road_network(8, 64, 103),
        polygon_rings(6, 64, 104),
        pathological_close_vertices(64),
        Dataset {
            name: "paper 9-segment example".to_string(),
            world: paper_world(),
            segs: paper_dataset(),
        },
    ]
}

fn brute_window(segs: &[LineSeg], q: &Rect) -> Vec<SegId> {
    (0..segs.len() as SegId)
        .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
        .collect()
}

/// Service vs unsharded batch engine vs brute force over one stream.
fn check_identity(data: &Dataset, config: QueryServiceConfig, seed: u64) {
    let service = QueryService::build(config, data.world, data.segs.clone());
    let reference_machine = match config.par_threshold {
        Some(t) => Machine::new(config.backend).with_par_threshold(t),
        None => Machine::new(config.backend),
    };
    let reference_tree = build_bucket_pmr(
        &reference_machine,
        data.world,
        &data.segs,
        config.capacity,
        config.max_depth,
    );

    let requests = request_stream(data.world, 90, RequestMix::DEFAULT, seed);
    let responses = service.execute_batch(&requests);
    assert_eq!(responses.len(), requests.len());

    // The unsharded reference answers all window-shaped requests in one
    // lockstep batch over the global tree.
    let probe_rects: Vec<Rect> = requests
        .iter()
        .filter_map(|r| match r {
            Request::Window(q) => Some(*q),
            Request::PointInWindow(p) => Some(Rect::point(*p)),
            Request::KNearest { .. } | Request::Join(_) => None,
        })
        .collect();
    let mut unsharded = batch_window_query(
        &reference_machine,
        &reference_tree,
        &probe_rects,
        &data.segs,
    )
    .into_iter();

    for (r, resp) in requests.iter().zip(&responses) {
        match (r, resp) {
            (Request::Window(q), Response::Window(ids)) => {
                let single = unsharded.next().unwrap();
                assert_eq!(ids, &single, "[{}] vs unsharded, window {q}", data.name);
                assert_eq!(
                    ids,
                    &brute_window(&data.segs, q),
                    "[{}] vs brute force, window {q}",
                    data.name
                );
            }
            (Request::PointInWindow(p), Response::PointInWindow(ids)) => {
                let single = unsharded.next().unwrap();
                assert_eq!(ids, &single, "[{}] vs unsharded, point {p:?}", data.name);
                assert_eq!(
                    ids,
                    &brute_window(&data.segs, &Rect::point(*p)),
                    "[{}] vs brute force, point {p:?}",
                    data.name
                );
            }
            (Request::KNearest { p, k }, Response::KNearest(found)) => {
                assert_eq!(
                    found,
                    &brute_knearest(&data.segs, *p, *k),
                    "[{}] k-NN p={p:?} k={k}",
                    data.name
                );
            }
            other => panic!("[{}] response kind mismatch: {other:?}", data.name),
        }
    }
    assert!(unsharded.next().is_none());
}

#[test]
fn every_family_sequential_backend() {
    for data in families() {
        for grid in [1u32, 2, 4] {
            let mut config = QueryServiceConfig::sequential(grid);
            config.flush_batch = 32; // force multi-flush queues
            check_identity(&data, config, 7 + grid as u64);
        }
    }
}

#[test]
fn every_family_parallel_backend() {
    for data in families() {
        for grid in [1u32, 2, 4] {
            let config = QueryServiceConfig {
                shard_grid: grid,
                backend: Backend::Parallel,
                ..QueryServiceConfig::default()
            };
            check_identity(&data, config, 40 + grid as u64);
        }
    }
}

/// The parallel backend with a forced threshold of 1 routes every
/// primitive through the rayon code paths even on small shards.
#[test]
fn forced_parallel_primitives_agree() {
    let data = uniform_segments(150, 64, 8, 105);
    for grid in [1u32, 2] {
        let config = QueryServiceConfig {
            shard_grid: grid,
            backend: Backend::Parallel,
            par_threshold: Some(1),
            ..QueryServiceConfig::default()
        };
        check_identity(&data, config, 60 + grid as u64);
    }
}

/// Sequential and parallel services over the same data produce identical
/// response vectors (byte-identical determinism across backends).
#[test]
fn backends_agree_on_full_streams() {
    let data = uniform_segments(200, 64, 8, 106);
    let requests = request_stream(data.world, 120, RequestMix::DEFAULT, 9);
    let seq = QueryService::build(
        QueryServiceConfig::sequential(2),
        data.world,
        data.segs.clone(),
    );
    let par = QueryService::build(
        QueryServiceConfig {
            shard_grid: 4,
            backend: Backend::Parallel,
            ..QueryServiceConfig::default()
        },
        data.world,
        data.segs.clone(),
    );
    assert_eq!(seq.execute_batch(&requests), par.execute_batch(&requests));
}

const WORLD_SIZE: i32 = 64;

/// Windows across the shape spectrum, degenerate and boundary-aligned
/// included (tile boundaries of a grid-`g` world are multiples of
/// `WORLD_SIZE / g`, so integer coordinates regularly land on them).
fn windows() -> impl Strategy<Value = Rect> {
    (
        0u8..6,
        0..WORLD_SIZE,
        0..WORLD_SIZE,
        1..WORLD_SIZE,
        1..WORLD_SIZE,
    )
        .prop_map(|(kind, x, y, w, h)| {
            let (x, y, w, h) = (x as f64, y as f64, w as f64, h as f64);
            let size = WORLD_SIZE as f64;
            match kind {
                0 => Rect::empty(),
                1 => Rect::point(Point::new(x, y)),
                2 => Rect::from_coords(x, y, (x + w).min(size), y),
                3 => Rect::from_coords(0.0, 0.0, size, size),
                4 => Rect::from_coords(x, y, x + w, y + h), // may exceed world
                _ => Rect::from_coords(x, y, (x + w).min(size), (y + h).min(size)),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid routing equals the brute-force tile filter for arbitrary
    /// window shapes and grid sizes.
    #[test]
    fn routing_matches_tile_intersection(qs in prop::collection::vec(windows(), 1..16)) {
        let world = Rect::from_coords(0.0, 0.0, WORLD_SIZE as f64, WORLD_SIZE as f64);
        for g in [1u32, 2, 4, 8] {
            let grid = ShardGrid::new(world, g);
            for q in &qs {
                let routed = grid.shards_overlapping(q);
                let expect: Vec<usize> = (0..grid.num_shards())
                    .filter(|&i| grid.tile_of(i).intersects(q))
                    .collect();
                prop_assert_eq!(&routed, &expect, "grid {} window {}", g, q);
                // Routed lists are strictly ascending: each shard at most once.
                prop_assert!(routed.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    /// A batch of window requests is executed on exactly the overlapping
    /// shards — each request once per overlapped shard, nothing else —
    /// and every merged response is duplicate-free.
    #[test]
    fn requests_execute_once_per_overlapping_shard(qs in prop::collection::vec(windows(), 1..24)) {
        let data = uniform_segments(120, 64, 8, 107);
        let service = QueryService::build(
            QueryServiceConfig::sequential(4),
            data.world,
            data.segs.clone(),
        );
        let grid = service.grid();
        let requests: Vec<Request> = qs.iter().map(|q| Request::Window(*q)).collect();
        service.reset_stats();
        let responses = service.execute_batch(&requests);
        let stats = service.stats();

        // Per shard: probes == number of requests overlapping its tile.
        for shard_stats in &stats.shards {
            let expect = qs
                .iter()
                .filter(|q| grid.tile_of(shard_stats.shard).intersects(q))
                .count() as u64;
            prop_assert_eq!(
                shard_stats.probes, expect,
                "shard {} tile {}", shard_stats.shard, shard_stats.tile
            );
        }
        // Globally: total executions == sum of per-request fan-outs.
        let fan_out: u64 = qs
            .iter()
            .map(|q| grid.shards_overlapping(q).len() as u64)
            .sum();
        prop_assert_eq!(stats.total_probes(), fan_out);

        // Merged responses are sorted and duplicate-free, and correct.
        for (q, resp) in qs.iter().zip(&responses) {
            let Response::Window(ids) = resp else { panic!("kind") };
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "duplicate ids for {}", q);
            prop_assert_eq!(ids, &brute_window(&data.segs, q), "window {}", q);
        }
    }
}
