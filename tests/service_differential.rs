//! Differential tests for the sharded query service: for every workload
//! family and on both scan-model backends, the service must answer
//! byte-identically to (a) one unsharded machine running
//! `batch_window_query` over the whole collection and (b) the
//! brute-force scan — and its routing layer must execute a request on
//! exactly the shards whose tiles it overlaps, merging without
//! duplicates. Mixed read/write streams must match a sequential eager
//! oracle that applies every insert/delete the moment it arrives, across
//! overlay accumulation and epoch-swapped compactions.

use dp_spatial_suite::geom::{clip_segment_closed, LineSeg, Point, Rect};
use dp_spatial_suite::seq::dominance::skyline_brute;
use dp_spatial_suite::service::{
    brute_knearest, AdmissionPolicy, QueryService, QueryServiceConfig, Response, ServicePipeline,
};
use dp_spatial_suite::spatial::batch::batch_window_query;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::dominance::dominance_weight;
use dp_spatial_suite::spatial::shard::ShardGrid;
use dp_spatial_suite::spatial::{SegId, SpatialError};
use dp_spatial_suite::workloads::{
    clustered_segments, paper_dataset, paper_world, pathological_close_vertices, polygon_rings,
    request_stream, request_stream_with_updates, road_network, uniform_segments, Dataset, Request,
    RequestMix,
};
use proptest::prelude::*;
use scan_model::{Backend, Machine};

/// Every workload family, sized for exhaustive brute-force checking.
fn families() -> Vec<Dataset> {
    vec![
        uniform_segments(250, 64, 8, 101),
        clustered_segments(220, 8, 10, 64, 102),
        road_network(8, 64, 103),
        polygon_rings(6, 64, 104),
        pathological_close_vertices(64),
        Dataset {
            name: "paper 9-segment example".to_string(),
            world: paper_world(),
            segs: paper_dataset(),
        },
    ]
}

fn brute_window(segs: &[LineSeg], q: &Rect) -> Vec<SegId> {
    (0..segs.len() as SegId)
        .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
        .collect()
}

/// Service vs unsharded batch engine vs brute force over one stream.
fn check_identity(data: &Dataset, config: QueryServiceConfig, seed: u64) {
    let service = QueryService::build(config, data.world, data.segs.clone());
    let reference_machine = match config.par_threshold {
        Some(t) => Machine::new(config.backend).with_par_threshold(t),
        None => Machine::new(config.backend),
    };
    let reference_tree = build_bucket_pmr(
        &reference_machine,
        data.world,
        &data.segs,
        config.capacity,
        config.max_depth,
    );

    let requests = request_stream(data.world, 90, RequestMix::DEFAULT, seed);
    let responses = service.execute_batch(&requests);
    assert_eq!(responses.len(), requests.len());

    // The unsharded reference answers all window-shaped requests in one
    // lockstep batch over the global tree.
    let probe_rects: Vec<Rect> = requests
        .iter()
        .filter_map(|r| match r {
            Request::Window(q) => Some(*q),
            Request::PointInWindow(p) => Some(Rect::point(*p)),
            Request::KNearest { .. }
            | Request::Join(_)
            | Request::Insert(_)
            | Request::Delete(_)
            | Request::Skyline(_)
            | Request::DominanceAgg(_) => None,
        })
        .collect();
    let mut unsharded = batch_window_query(
        &reference_machine,
        &reference_tree,
        &probe_rects,
        &data.segs,
    )
    .into_iter();

    for (r, resp) in requests.iter().zip(&responses) {
        match (r, resp) {
            (Request::Window(q), Response::Window(ids)) => {
                let single = unsharded.next().unwrap();
                assert_eq!(**ids, single, "[{}] vs unsharded, window {q}", data.name);
                assert_eq!(
                    **ids,
                    brute_window(&data.segs, q),
                    "[{}] vs brute force, window {q}",
                    data.name
                );
            }
            (Request::PointInWindow(p), Response::PointInWindow(ids)) => {
                let single = unsharded.next().unwrap();
                assert_eq!(**ids, single, "[{}] vs unsharded, point {p:?}", data.name);
                assert_eq!(
                    **ids,
                    brute_window(&data.segs, &Rect::point(*p)),
                    "[{}] vs brute force, point {p:?}",
                    data.name
                );
            }
            (Request::KNearest { p, k }, Response::KNearest(found)) => {
                assert_eq!(
                    found,
                    &brute_knearest(&data.segs, *p, *k),
                    "[{}] k-NN p={p:?} k={k}",
                    data.name
                );
            }
            other => panic!("[{}] response kind mismatch: {other:?}", data.name),
        }
    }
    assert!(unsharded.next().is_none());
}

#[test]
fn every_family_sequential_backend() {
    for data in families() {
        for grid in [1u32, 2, 4] {
            let mut config = QueryServiceConfig::sequential(grid);
            config.flush_batch = 32; // force multi-flush queues
            check_identity(&data, config, 7 + grid as u64);
        }
    }
}

#[test]
fn every_family_parallel_backend() {
    for data in families() {
        for grid in [1u32, 2, 4] {
            let config = QueryServiceConfig {
                shard_grid: grid,
                backend: Backend::Parallel,
                ..QueryServiceConfig::default()
            };
            check_identity(&data, config, 40 + grid as u64);
        }
    }
}

/// The parallel backend with a forced threshold of 1 routes every
/// primitive through the rayon code paths even on small shards.
#[test]
fn forced_parallel_primitives_agree() {
    let data = uniform_segments(150, 64, 8, 105);
    for grid in [1u32, 2] {
        let config = QueryServiceConfig {
            shard_grid: grid,
            backend: Backend::Parallel,
            par_threshold: Some(1),
            ..QueryServiceConfig::default()
        };
        check_identity(&data, config, 60 + grid as u64);
    }
}

/// Sequential and parallel services over the same data produce identical
/// response vectors (byte-identical determinism across backends).
#[test]
fn backends_agree_on_full_streams() {
    let data = uniform_segments(200, 64, 8, 106);
    let requests = request_stream(data.world, 120, RequestMix::DEFAULT, 9);
    let seq = QueryService::build(
        QueryServiceConfig::sequential(2),
        data.world,
        data.segs.clone(),
    );
    let par = QueryService::build(
        QueryServiceConfig {
            shard_grid: 4,
            backend: Backend::Parallel,
            ..QueryServiceConfig::default()
        },
        data.world,
        data.segs.clone(),
    );
    assert_eq!(seq.execute_batch(&requests), par.execute_batch(&requests));
}

/// The eager oracle for mixed read/write streams: applies every write
/// the instant it arrives (`Vec::push` / `Vec::remove`, so logical ids
/// are positions in the evolving collection) and answers every read by
/// brute force over the current collection. The epoch-swapped service —
/// overlay ladder, tombstones, threshold compactions and all — must
/// produce the exact same response vector.
fn check_write_identity(data: &Dataset, config: QueryServiceConfig, seed: u64, n_requests: usize) {
    let service = QueryService::build(config, data.world, data.segs.clone());
    let requests = request_stream_with_updates(
        data.world,
        n_requests,
        RequestMix::WITH_UPDATES,
        seed,
        data.segs.len(),
    );
    let responses = service.execute_batch(&requests);
    assert_eq!(responses.len(), requests.len());

    let mut live = data.segs.clone();
    for (i, (r, resp)) in requests.iter().zip(&responses).enumerate() {
        match r {
            Request::Window(q) => {
                assert_eq!(
                    resp.try_window(i),
                    Ok(brute_window(&live, q).as_slice()),
                    "[{}] window {q} at slot {i}",
                    data.name
                );
            }
            Request::PointInWindow(p) => {
                let expected = brute_window(&live, &Rect::point(*p));
                assert_eq!(
                    resp.try_point_in_window(i),
                    Ok(expected.as_slice()),
                    "[{}] point {p:?} at slot {i}",
                    data.name
                );
            }
            Request::KNearest { p, k } => {
                let expected = brute_knearest(&live, *p, *k);
                assert_eq!(
                    resp.try_knearest(i),
                    Ok(expected.as_slice()),
                    "[{}] k-NN p={p:?} k={k} at slot {i}",
                    data.name
                );
            }
            Request::Join(_) | Request::Skyline(_) | Request::DominanceAgg(_) => {
                unreachable!("WITH_UPDATES carries no joins or dominance requests")
            }
            Request::Insert(seg) => {
                assert_eq!(
                    resp.try_inserted(i),
                    Ok(live.len() as SegId),
                    "[{}] insert at slot {i}",
                    data.name
                );
                live.push(*seg);
            }
            Request::Delete(id) => {
                assert_eq!(
                    resp.try_deleted(i),
                    Ok(*id),
                    "[{}] delete at slot {i}",
                    data.name
                );
                live.remove(*id as usize);
            }
        }
    }
    // The service's logical collection converged to the oracle's.
    assert_eq!(service.segments(), live, "[{}] final collection", data.name);
}

#[test]
fn write_streams_every_family_sequential_backend() {
    for data in families() {
        for grid in [1u32, 2] {
            let config = QueryServiceConfig {
                compact_threshold: 8, // several compactions per stream
                ..QueryServiceConfig::sequential(grid)
            };
            check_write_identity(&data, config, 300 + grid as u64, 120);
        }
    }
}

#[test]
fn write_streams_every_family_parallel_backend() {
    for data in families() {
        let config = QueryServiceConfig {
            shard_grid: 2,
            backend: Backend::Parallel,
            compact_threshold: 8,
            ..QueryServiceConfig::default()
        };
        check_write_identity(&data, config, 333, 120);
    }
}

/// Sequential and parallel services over the same mixed read/write
/// stream produce identical response vectors, and their telemetry
/// reports the same epoch progression.
#[test]
fn backends_agree_on_write_streams() {
    let data = uniform_segments(150, 64, 8, 108);
    let requests = request_stream_with_updates(
        data.world,
        160,
        RequestMix::WITH_UPDATES,
        11,
        data.segs.len(),
    );
    let seq = QueryService::build(
        QueryServiceConfig {
            compact_threshold: 10,
            ..QueryServiceConfig::sequential(2)
        },
        data.world,
        data.segs.clone(),
    );
    let par = QueryService::build(
        QueryServiceConfig {
            shard_grid: 4,
            backend: Backend::Parallel,
            compact_threshold: 10,
            ..QueryServiceConfig::default()
        },
        data.world,
        data.segs.clone(),
    );
    assert_eq!(seq.execute_batch(&requests), par.execute_batch(&requests));
    let (s, p) = (seq.stats(), par.stats());
    assert_eq!(s.epoch, p.epoch, "same threshold, same write stream");
    assert!(
        s.compactions > 0,
        "threshold 10 over 160 requests must compact"
    );
    assert_eq!(s.epoch, s.compactions);
    assert_eq!(
        (s.overlay_size, s.tombstones),
        (p.overlay_size, p.tombstones)
    );
    assert_eq!(seq.segments(), par.segments());
}

/// Overlay telemetry tracks the write pressure exactly: pending inserts
/// and tombstones count up, a triggered compaction folds them into a new
/// epoch and zeroes both gauges.
#[test]
fn stats_expose_overlay_pressure_and_epochs() {
    let data = uniform_segments(100, 64, 8, 109);
    let svc = QueryService::build(
        QueryServiceConfig {
            compact_threshold: 100, // never triggers during this test
            ..QueryServiceConfig::sequential(2)
        },
        data.world,
        data.segs.clone(),
    );
    let s0 = svc.stats();
    assert_eq!((s0.epoch, s0.overlay_size, s0.tombstones), (0, 0, 0));
    assert_eq!(s0.compactions, 0);
    assert!(s0.shards.iter().all(|sh| sh.epoch == 0));

    svc.execute_batch(&[
        Request::Insert(LineSeg::from_coords(3.0, 3.0, 7.0, 7.0)),
        Request::Insert(LineSeg::from_coords(9.0, 2.0, 12.0, 5.0)),
        Request::Delete(0),
    ]);
    let s1 = svc.stats();
    assert_eq!((s1.epoch, s1.overlay_size, s1.tombstones), (0, 2, 1));

    svc.compact_now().expect("compaction");
    let s2 = svc.stats();
    assert_eq!((s2.epoch, s2.overlay_size, s2.tombstones), (1, 0, 0));
    assert_eq!(s2.compactions, 1);
    assert_eq!(s2.failed_compactions, 0);
    assert!(s2.shards.iter().all(|sh| sh.epoch == 1));
    assert_eq!(svc.segments().len(), data.segs.len() + 1);
}

// ---------------------------------------------------------------------
// Pipelined serving differentials: coalesced / cached / shed admission
// against the eager sequential oracle.
// ---------------------------------------------------------------------

/// A one-lane pipeline is strictly FIFO, so coalesced micro-batches and
/// the hot-window cache must be semantically invisible: every workload
/// family's mixed read/write stream answers byte-identically to the
/// eager `execute_batch` oracle, across overlay accumulation and
/// background epoch compactions.
#[test]
fn pipelined_serving_matches_eager_oracle_on_mixed_streams() {
    for data in families() {
        let config = QueryServiceConfig {
            compact_threshold: 8, // several background compactions
            flush_batch: 16,      // several coalesced flushes per stream
            coalesce_deadline_micros: 200,
            ..QueryServiceConfig::sequential(2)
        };
        let svc = std::sync::Arc::new(QueryService::build(config, data.world, data.segs.clone()));
        let oracle = QueryService::build(config, data.world, data.segs.clone());
        let requests = request_stream_with_updates(
            data.world,
            120,
            RequestMix::WITH_UPDATES,
            17,
            data.segs.len(),
        );
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        assert_eq!(
            pipeline.submit_all(&requests),
            oracle.execute_batch(&requests),
            "[{}] pipelined stream diverged from eager oracle",
            data.name
        );
        drop(pipeline); // join workers and the background compactor
        assert_eq!(svc.segments(), oracle.segments(), "[{}]", data.name);

        // Absorb any write pressure the background compactor had not
        // reached before the join, so no epoch swap (which flushes the
        // cache) can land inside the replay below.
        if svc.stats().overlay_size + svc.stats().tombstones > 0 {
            svc.compact_now().expect("clean compaction");
        }

        // Replay the read-only portion twice through a fresh pipeline:
        // with no writes pending, the second pass serves warm cache
        // hits, and those hits must still equal the eager answers.
        let reads: Vec<Request> = requests
            .iter()
            .filter(|r| !matches!(r, Request::Insert(_) | Request::Delete(_)))
            .copied()
            .collect();
        let expected = oracle.execute_batch(&reads);
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        assert_eq!(
            pipeline.submit_all(&reads),
            expected,
            "[{}] cold replay",
            data.name
        );
        assert_eq!(
            pipeline.submit_all(&reads),
            expected,
            "[{}] warm replay",
            data.name
        );
        drop(pipeline);
        assert!(
            svc.cache_stats().hits > 0,
            "[{}] warm replay never hit the cache — the differential proved nothing",
            data.name
        );
    }
}

/// Under `AdmissionPolicy::Shed`, a served stream must equal an eager
/// oracle that replays exactly the non-shed requests: shed writes are
/// never applied, shed reads answer `Overloaded`, and everything that
/// was admitted answers as if the shed requests never existed.
#[test]
fn shed_serving_matches_oracle_on_admitted_subsequence() {
    let data = uniform_segments(150, 64, 8, 119);
    let config = QueryServiceConfig {
        flush_batch: 8,
        queue_bound: 8,
        coalesce_deadline_micros: 50_000, // park the worker: force sheds
        compact_threshold: 16,
        ..QueryServiceConfig::sequential(2)
    };
    let svc = std::sync::Arc::new(QueryService::build(config, data.world, data.segs.clone()));
    let requests = request_stream_with_updates(
        data.world,
        400,
        RequestMix::WITH_UPDATES,
        23,
        data.segs.len(),
    );
    let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Shed).unwrap();
    let responses = pipeline.submit_all(&requests);
    let shed_total = pipeline.shed();
    drop(pipeline);

    // Replay only the admitted subsequence through an eager oracle.
    let oracle = QueryService::build(config, data.world, data.segs.clone());
    let mut shed_seen = 0u64;
    for (i, (req, resp)) in requests.iter().zip(&responses).enumerate() {
        if matches!(resp, Response::Rejected(SpatialError::Overloaded { .. })) {
            shed_seen += 1;
            continue; // never applied, nothing to compare
        }
        let expect = oracle.execute_batch(std::slice::from_ref(req));
        assert_eq!(resp, &expect[0], "slot {i} diverged from replay oracle");
    }
    assert_eq!(shed_seen, shed_total);
    assert!(
        shed_seen > 0,
        "bound 8 against a 400-burst never shed — the differential proved nothing"
    );
    assert_eq!(svc.segments(), oracle.segments());
}

// ---------------------------------------------------------------------
// Dominance-family serving: pipelined streams against the eager oracle.
// ---------------------------------------------------------------------

/// Brute-force `Request::Skyline` oracle: the skyline of the midpoints
/// of the live segments intersecting `q` (closed clip), ids ascending.
fn brute_skyline_in(live: &[LineSeg], q: &Rect) -> Vec<SegId> {
    let cands: Vec<(SegId, f64, f64)> = live
        .iter()
        .enumerate()
        .filter(|(_, s)| clip_segment_closed(s, q).is_some())
        .map(|(id, s)| {
            let m = s.midpoint();
            (id as SegId, m.x, m.y)
        })
        .collect();
    let ids: Vec<SegId> = cands.iter().map(|c| c.0).collect();
    let xs: Vec<f64> = cands.iter().map(|c| c.1).collect();
    let ys: Vec<f64> = cands.iter().map(|c| c.2).collect();
    skyline_brute(&ids, &xs, &ys)
}

/// Brute-force `Request::DominanceAgg` oracle: (count, sum, max) of
/// [`dominance_weight`] over live segments whose midpoint lies in the
/// closed lower-left quadrant of `p`.
fn brute_dominance_agg(live: &[LineSeg], p: Point) -> (u64, u64, u64) {
    let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
    for s in live {
        let m = s.midpoint();
        if m.x <= p.x && m.y <= p.y {
            let w = dominance_weight(s);
            count += 1;
            sum += w;
            max = max.max(w);
        }
    }
    (count, sum, max)
}

/// Mixed dominance streams (`WITH_DOMINANCE`: windows, points, k-NN,
/// skylines, aggregates, inserts and deletes) served through the
/// pipelined admission layer answer byte-identically to the eager
/// `execute_batch` oracle, and every dominance answer equals the brute
/// force over the evolving collection — on both backends.
#[test]
fn pipelined_dominance_streams_match_eager_oracle() {
    for (backend, grid) in [(Backend::Sequential, 2u32), (Backend::Parallel, 4)] {
        for data in families() {
            let config = QueryServiceConfig {
                shard_grid: grid,
                backend,
                compact_threshold: 8, // several background compactions
                flush_batch: 16,
                coalesce_deadline_micros: 200,
                ..QueryServiceConfig::default()
            };
            let svc =
                std::sync::Arc::new(QueryService::build(config, data.world, data.segs.clone()));
            let oracle = QueryService::build(config, data.world, data.segs.clone());
            let requests = request_stream_with_updates(
                data.world,
                120,
                RequestMix::WITH_DOMINANCE,
                29,
                data.segs.len(),
            );
            assert!(
                requests
                    .iter()
                    .any(|r| matches!(r, Request::Skyline(_) | Request::DominanceAgg(_))),
                "WITH_DOMINANCE stream carried no dominance requests"
            );
            let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
            let responses = pipeline.submit_all(&requests);
            drop(pipeline);
            assert_eq!(
                responses,
                oracle.execute_batch(&requests),
                "[{}] pipelined dominance stream diverged from eager oracle",
                data.name
            );

            // Every dominance answer equals brute force over the live
            // collection at its stream position.
            let mut live = data.segs.clone();
            for (i, (r, resp)) in requests.iter().zip(&responses).enumerate() {
                match r {
                    Request::Skyline(q) => {
                        assert_eq!(
                            resp.try_skyline(i),
                            Ok(brute_skyline_in(&live, q).as_slice()),
                            "[{}] skyline {q} at slot {i}",
                            data.name
                        );
                    }
                    Request::DominanceAgg(p) => {
                        assert_eq!(
                            resp.try_dominance_agg(i),
                            Ok(brute_dominance_agg(&live, *p)),
                            "[{}] dominance agg {p:?} at slot {i}",
                            data.name
                        );
                    }
                    Request::Insert(seg) => live.push(*seg),
                    Request::Delete(id) => {
                        live.remove(*id as usize);
                    }
                    _ => {}
                }
            }
            assert_eq!(svc.segments(), live, "[{}] final collection", data.name);
        }
    }
}

const WORLD_SIZE: i32 = 64;

/// Windows across the shape spectrum, degenerate and boundary-aligned
/// included (tile boundaries of a grid-`g` world are multiples of
/// `WORLD_SIZE / g`, so integer coordinates regularly land on them).
fn windows() -> impl Strategy<Value = Rect> {
    (
        0u8..6,
        0..WORLD_SIZE,
        0..WORLD_SIZE,
        1..WORLD_SIZE,
        1..WORLD_SIZE,
    )
        .prop_map(|(kind, x, y, w, h)| {
            let (x, y, w, h) = (x as f64, y as f64, w as f64, h as f64);
            let size = WORLD_SIZE as f64;
            match kind {
                0 => Rect::empty(),
                1 => Rect::point(Point::new(x, y)),
                2 => Rect::from_coords(x, y, (x + w).min(size), y),
                3 => Rect::from_coords(0.0, 0.0, size, size),
                4 => Rect::from_coords(x, y, x + w, y + h), // may exceed world
                _ => Rect::from_coords(x, y, (x + w).min(size), (y + h).min(size)),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid routing equals the brute-force tile filter for arbitrary
    /// window shapes and grid sizes.
    #[test]
    fn routing_matches_tile_intersection(qs in prop::collection::vec(windows(), 1..16)) {
        let world = Rect::from_coords(0.0, 0.0, WORLD_SIZE as f64, WORLD_SIZE as f64);
        for g in [1u32, 2, 4, 8] {
            let grid = ShardGrid::new(world, g);
            for q in &qs {
                let routed = grid.shards_overlapping(q);
                let expect: Vec<usize> = (0..grid.num_shards())
                    .filter(|&i| grid.tile_of(i).intersects(q))
                    .collect();
                prop_assert_eq!(&routed, &expect, "grid {} window {}", g, q);
                // Routed lists are strictly ascending: each shard at most once.
                prop_assert!(routed.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    /// Read-after-write through the pipeline: a window answer served
    /// from the hot-window cache must be invalidated by any overlapping
    /// write before the next read — the re-read always equals the brute
    /// force over the post-write collection, never the stale cached ids.
    #[test]
    fn cache_hits_invalidated_by_overlapping_writes(
        q in windows(),
        writes in prop::collection::vec(
            (0..WORLD_SIZE - 8, 0..WORLD_SIZE - 8, 1..8i32, 1..8i32),
            1..6,
        ),
    ) {
        let data = uniform_segments(80, 64, 8, 113);
        let config = QueryServiceConfig {
            flush_batch: 4,
            coalesce_deadline_micros: 100,
            compact_threshold: 1_000, // writes stay in the overlay
            ..QueryServiceConfig::sequential(2)
        };
        let svc = std::sync::Arc::new(
            QueryService::build(config, data.world, data.segs.clone()),
        );
        let pipeline =
            ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        let mut live = data.segs.clone();

        // Prime the cache with the window (and once more: a hit).
        let primed = pipeline.submit_all(&[Request::Window(q), Request::Window(q)]);
        prop_assert_eq!(
            &primed[0],
            &Response::Window(std::sync::Arc::new(brute_window(&live, &q)))
        );
        prop_assert_eq!(&primed[1], &primed[0]);

        for (x, y, w, h) in writes {
            let seg = LineSeg::from_coords(
                x as f64,
                y as f64,
                (x + w) as f64,
                (y + h) as f64,
            );
            // Insert (sometimes crossing q, sometimes not), then
            // re-read the same window through the admission path.
            let out = pipeline.submit_all(&[Request::Insert(seg), Request::Window(q)]);
            prop_assert!(matches!(out[0], Response::Inserted(_)));
            live.push(seg);
            prop_assert_eq!(
                &out[1],
                &Response::Window(std::sync::Arc::new(brute_window(&live, &q))),
                "stale cache after insert {} against window {}", seg, q
            );
        }

        // Deletes shift logical ids, which flushes the cache wholesale:
        // the re-read reflects the removal too.
        let out = pipeline.submit_all(&[Request::Delete(0), Request::Window(q)]);
        prop_assert!(matches!(out[0], Response::Deleted(0)));
        live.remove(0);
        prop_assert_eq!(
            &out[1],
            &Response::Window(std::sync::Arc::new(brute_window(&live, &q))),
            "stale cache after delete against window {}", q
        );
    }

    /// Read-after-write for the dominance family: cached skyline and
    /// dominance-aggregate answers must be invalidated by overlapping
    /// writes — every re-read equals the brute force over the post-write
    /// collection, never a stale cached result.
    #[test]
    fn dominance_cache_invalidated_by_overlapping_writes(
        q in windows(),
        writes in prop::collection::vec(
            (0..WORLD_SIZE - 8, 0..WORLD_SIZE - 8, 1..8i32, 1..8i32),
            1..6,
        ),
    ) {
        let data = uniform_segments(80, 64, 8, 127);
        let config = QueryServiceConfig {
            flush_batch: 4,
            coalesce_deadline_micros: 100,
            compact_threshold: 1_000, // writes stay in the overlay
            ..QueryServiceConfig::sequential(2)
        };
        let svc = std::sync::Arc::new(
            QueryService::build(config, data.world, data.segs.clone()),
        );
        let pipeline =
            ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        let mut live = data.segs.clone();
        // The aggregate probe sits at the window's far corner, so the
        // inserted segments regularly land inside its quadrant.
        let p = if q.is_empty() { Point::new(32.0, 32.0) } else { q.max };

        // Prime both dominance kinds (and once more: warm hits).
        let primed = pipeline.submit_all(&[
            Request::Skyline(q),
            Request::DominanceAgg(p),
            Request::Skyline(q),
            Request::DominanceAgg(p),
        ]);
        prop_assert_eq!(primed[0].try_skyline(0), Ok(brute_skyline_in(&live, &q).as_slice()));
        prop_assert_eq!(primed[1].try_dominance_agg(1), Ok(brute_dominance_agg(&live, p)));
        prop_assert_eq!(&primed[2], &primed[0]);
        prop_assert_eq!(&primed[3], &primed[1]);

        for (x, y, w, h) in writes {
            let seg = LineSeg::from_coords(
                x as f64,
                y as f64,
                (x + w) as f64,
                (y + h) as f64,
            );
            // Insert (sometimes overlapping the window / quadrant,
            // sometimes not), then re-read both dominance kinds through
            // the admission path.
            let out = pipeline.submit_all(&[
                Request::Insert(seg),
                Request::Skyline(q),
                Request::DominanceAgg(p),
            ]);
            prop_assert!(matches!(out[0], Response::Inserted(_)));
            live.push(seg);
            prop_assert_eq!(
                out[1].try_skyline(1),
                Ok(brute_skyline_in(&live, &q).as_slice()),
                "stale skyline cache after insert {} against window {}", seg, q
            );
            prop_assert_eq!(
                out[2].try_dominance_agg(2),
                Ok(brute_dominance_agg(&live, p)),
                "stale aggregate cache after insert {} against probe {:?}", seg, p
            );
        }

        // Deletes shift logical ids, which flushes the cache wholesale.
        let out = pipeline.submit_all(&[
            Request::Delete(0),
            Request::Skyline(q),
            Request::DominanceAgg(p),
        ]);
        prop_assert!(matches!(out[0], Response::Deleted(0)));
        live.remove(0);
        prop_assert_eq!(
            out[1].try_skyline(1),
            Ok(brute_skyline_in(&live, &q).as_slice()),
            "stale skyline cache after delete against window {}", q
        );
        prop_assert_eq!(
            out[2].try_dominance_agg(2),
            Ok(brute_dominance_agg(&live, p)),
            "stale aggregate cache after delete against probe {:?}", p
        );
    }

    /// A batch of window requests is executed on exactly the overlapping
    /// shards — each request once per overlapped shard, nothing else —
    /// and every merged response is duplicate-free.
    #[test]
    fn requests_execute_once_per_overlapping_shard(qs in prop::collection::vec(windows(), 1..24)) {
        let data = uniform_segments(120, 64, 8, 107);
        let service = QueryService::build(
            QueryServiceConfig::sequential(4),
            data.world,
            data.segs.clone(),
        );
        let grid = service.grid();
        let requests: Vec<Request> = qs.iter().map(|q| Request::Window(*q)).collect();
        service.reset_stats();
        let responses = service.execute_batch(&requests);
        let stats = service.stats();

        // Per shard: probes == number of requests overlapping its tile.
        for shard_stats in &stats.shards {
            let expect = qs
                .iter()
                .filter(|q| grid.tile_of(shard_stats.shard).intersects(q))
                .count() as u64;
            prop_assert_eq!(
                shard_stats.probes, expect,
                "shard {} tile {}", shard_stats.shard, shard_stats.tile
            );
        }
        // Globally: total executions == sum of per-request fan-outs.
        let fan_out: u64 = qs
            .iter()
            .map(|q| grid.shards_overlapping(q).len() as u64)
            .sum();
        prop_assert_eq!(stats.total_probes(), fan_out);

        // Merged responses are sorted and duplicate-free, and correct.
        for (q, resp) in qs.iter().zip(&responses) {
            let Response::Window(ids) = resp else { panic!("kind") };
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "duplicate ids for {}", q);
            prop_assert_eq!(&**ids, &brute_window(&data.segs, q), "window {}", q);
        }
    }
}
