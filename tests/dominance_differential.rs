//! Differential + metamorphic battery for the dominance/skyline
//! pipelines and the generalized flat-map kernel they ride.
//!
//! Three layers of evidence, per ISSUE 10:
//!
//! * **Differential** — [`skyline`] and [`dominance_agg`] must agree
//!   with the brute-force sequential oracle (`seq_spatial::dominance`)
//!   on both scan-model backends: scripted edge shapes (empty, single,
//!   all-collinear, duplicate coordinates, all-dominated) plus random
//!   sweeps honouring `PROPTEST_CASES`.
//! * **Metamorphic** — properties that must hold without consulting any
//!   oracle: permuting the input never changes the answers, translating
//!   points and queries together never changes them, strictly monotone
//!   coordinate transforms preserve the skyline id-set, and inserting a
//!   dominated point never changes the skyline.
//! * **Kernel** — the variable-arity flat-map underneath the skyline
//!   compaction is bit-identical across backends at block-boundary
//!   sizes (n = block−1, block, block+1), and the CDQ merge rounds of
//!   [`dominance_agg`] spend O(1) primitives per round: the per-round
//!   `RoundTrace` deltas are one constant tuple, independent of input
//!   size.

use dp_spatial_suite::seq::dominance::{dominance_agg_brute, skyline_brute};
use dp_spatial_suite::spatial::dominance::{dominance_agg, skyline, DomAgg, DomPoint, Staircase};
use dp_spatial_suite::spatial::SegId;
use proptest::prelude::*;
use scan_model::{Backend, Machine, Segments};

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("sequential", Machine::sequential()),
        (
            "parallel",
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ),
    ]
}

fn pt(id: SegId, x: f64, y: f64, w: u64) -> DomPoint {
    DomPoint { id, x, y, w }
}

/// Skyline under test, in canonical (sorted ascending) id order.
fn sky_sorted(m: &Machine, pts: &[DomPoint]) -> Vec<SegId> {
    let mut s = skyline(m, pts);
    s.sort_unstable();
    s
}

/// The brute oracle over the same points.
fn sky_oracle(pts: &[DomPoint]) -> Vec<SegId> {
    let ids: Vec<SegId> = pts.iter().map(|p| p.id).collect();
    let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
    skyline_brute(&ids, &xs, &ys)
}

/// The brute oracle for every query.
fn agg_oracle(pts: &[DomPoint], queries: &[(f64, f64)]) -> Vec<DomAgg> {
    let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
    let ws: Vec<u64> = pts.iter().map(|p| p.w).collect();
    queries
        .iter()
        .map(|&(qx, qy)| {
            let (count, sum, max) = dominance_agg_brute(&xs, &ys, &ws, qx, qy);
            DomAgg { count, sum, max }
        })
        .collect()
}

fn check_both(pts: &[DomPoint], queries: &[(f64, f64)]) {
    let want_sky = sky_oracle(pts);
    let want_agg = agg_oracle(pts, queries);
    for (name, m) in machines() {
        assert_eq!(sky_sorted(&m, pts), want_sky, "skyline vs oracle on {name}");
        assert_eq!(
            dominance_agg(&m, pts, queries),
            want_agg,
            "dominance_agg vs oracle on {name}"
        );
    }
}

// ---------------------------------------------------------------------
// Differential: scripted edge shapes
// ---------------------------------------------------------------------

#[test]
fn scripted_empty_and_single() {
    check_both(&[], &[(0.0, 0.0), (5.0, -3.0)]);
    check_both(
        &[pt(9, 2.5, -1.5, 7)],
        &[(2.5, -1.5), (0.0, 0.0), (9.0, 9.0)],
    );
}

#[test]
fn scripted_collinear() {
    // Vertical line (equal x): only the top point survives.
    let vertical: Vec<DomPoint> = (0..7).map(|i| pt(i, 3.0, i as f64, i as u64)).collect();
    // Horizontal line (equal y): only the rightmost survives.
    let horizontal: Vec<DomPoint> = (0..7).map(|i| pt(i, i as f64, 3.0, 1)).collect();
    // Ascending diagonal: every point dominates its predecessors, one
    // survivor. Descending diagonal: nobody dominates anybody, all
    // survive.
    let ascending: Vec<DomPoint> = (0..7).map(|i| pt(i, i as f64, i as f64, 2)).collect();
    let descending: Vec<DomPoint> = (0..7).map(|i| pt(i, i as f64, -(i as f64), 2)).collect();
    let queries = [(3.0, 3.0), (0.0, 6.0), (-1.0, -1.0), (10.0, 10.0)];
    for pts in [&vertical, &horizontal, &ascending, &descending] {
        check_both(pts, &queries);
    }
    for (_, m) in machines() {
        assert_eq!(sky_sorted(&m, &vertical), vec![6]);
        assert_eq!(sky_sorted(&m, &horizontal), vec![6]);
        assert_eq!(sky_sorted(&m, &ascending), vec![6]);
        assert_eq!(sky_sorted(&m, &descending), (0..7).collect::<Vec<_>>());
    }
}

#[test]
fn scripted_duplicate_coordinates() {
    // Four copies of the maximal point: all survive (closed dominance is
    // never strict between coordinate twins), and a query at the point
    // counts all four.
    let pts = [
        pt(0, 5.0, 5.0, 10),
        pt(1, 5.0, 5.0, 20),
        pt(2, 5.0, 5.0, 30),
        pt(3, 5.0, 5.0, 40),
        pt(4, 1.0, 1.0, 99),
    ];
    check_both(&pts, &[(5.0, 5.0), (4.9, 5.0), (1.0, 1.0)]);
    for (_, m) in machines() {
        assert_eq!(sky_sorted(&m, &pts), vec![0, 1, 2, 3]);
        let aggs = dominance_agg(&m, &pts, &[(5.0, 5.0)]);
        assert_eq!(
            aggs[0],
            DomAgg {
                count: 5,
                sum: 199,
                max: 99
            }
        );
    }
}

#[test]
fn scripted_all_dominated() {
    // One point dominates the whole cloud: singleton skyline.
    let mut pts: Vec<DomPoint> = (0..40)
        .map(|i| pt(i, (i % 7) as f64, (i % 5) as f64, i as u64))
        .collect();
    pts.push(pt(100, 10.0, 10.0, 1));
    check_both(&pts, &[(10.0, 10.0), (6.0, 4.0), (0.0, 0.0)]);
    for (_, m) in machines() {
        assert_eq!(sky_sorted(&m, &pts), vec![100]);
    }
}

// ---------------------------------------------------------------------
// Staircase: the servable form answers like the pipelines it froze
// ---------------------------------------------------------------------

#[test]
fn staircase_matches_skyline_restricted_oracle() {
    let pts: Vec<DomPoint> = (0..60)
        .map(|i| {
            let x = ((i * 37) % 64) as f64 * 0.5;
            let y = ((i * 23) % 64) as f64 * 0.5;
            pt(i, x, y, (i as u64 % 9) + 1)
        })
        .collect();
    let want_ids = sky_oracle(&pts);
    // The staircase aggregates over skyline points only.
    let sky_pts: Vec<DomPoint> = pts
        .iter()
        .filter(|p| want_ids.contains(&p.id))
        .copied()
        .collect();
    for (name, m) in machines() {
        let st = Staircase::build(&m, &pts);
        let mut ids = st.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, want_ids, "staircase ids on {name}");
        for q in [
            (1.0, 30.0),
            (30.0, 1.0),
            (16.0, 16.0),
            (-1.0, -1.0),
            (40.0, 40.0),
        ] {
            let want = agg_oracle(&sky_pts, &[q])[0];
            assert_eq!(st.agg(q.0, q.1), want, "staircase agg at {q:?} on {name}");
            // covers == some skyline point closed-dominates the probe.
            let want_cover = sky_pts.iter().any(|p| p.x >= q.0 && p.y >= q.1);
            assert_eq!(st.covers(q.0, q.1), want_cover, "covers at {q:?} on {name}");
        }
    }
}

// ---------------------------------------------------------------------
// Kernel: flat-map block-boundary bit-identity and O(1)-per-round gates
// ---------------------------------------------------------------------

/// The flat-map output (layout and applied values) is bit-identical
/// between the sequential reference and the blocked parallel path at
/// n = block−1, block, block+1 for several block geometries.
#[test]
fn flat_map_bit_identical_at_block_boundaries() {
    let seq = Machine::sequential();
    for block_elems in [2usize, 16, 64] {
        let par = Machine::new(Backend::Parallel)
            .with_par_threshold(1)
            .with_block_bytes(block_elems * std::mem::size_of::<u64>());
        for n in [block_elems - 1, block_elems, block_elems + 1] {
            let seg = Segments::single(n);
            let data: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
            // Mixed fan-out widths incl. zero (deletion) and >1 (clone).
            let counts: Vec<u32> = (0..n).map(|i| ((i * 5 + 1) % 4) as u32).collect();
            let (out_s, lay_s) = seq.flat_map(&seg, &data, &counts, |v, r| v * 10 + r as u64);
            let (out_p, lay_p) = par.flat_map(&seg, &data, &counts, |v, r| v * 10 + r as u64);
            assert_eq!(out_s, out_p, "values at n={n} block={block_elems}");
            assert_eq!(lay_s, lay_p, "layout at n={n} block={block_elems}");
        }
    }
}

/// Every CDQ merge round of `dominance_agg` spends the same constant
/// primitive budget: within one run all rounds record one (scans,
/// scan_passes, elementwise, permutes) tuple, and the tuple is the same
/// at two input sizes an order of magnitude apart — O(1) primitives per
/// round, independent of n.
#[test]
fn dominance_rounds_spend_constant_primitives() {
    let sizes = [200usize, 3000];
    for (name, m) in machines() {
        let mut tuples_by_size = Vec::new();
        for &n in &sizes {
            let pts: Vec<DomPoint> = (0..n)
                .map(|i| {
                    pt(
                        i as SegId,
                        ((i * 131) % 997) as f64,
                        ((i * 577) % 991) as f64,
                        (i % 50) as u64,
                    )
                })
                .collect();
            let queries: Vec<(f64, f64)> = (0..24)
                .map(|i| (i as f64 * 40.0, 980.0 - i as f64 * 40.0))
                .collect();
            m.take_round_traces();
            let _ = dominance_agg(&m, &pts, &queries);
            let traces = m.take_round_traces();
            let lanes = n + queries.len();
            assert_eq!(
                traces.len(),
                lanes.next_power_of_two().trailing_zeros() as usize,
                "ceil(log2 lanes) rounds at n={n} on {name}"
            );
            let tuples: Vec<(u64, u64, u64, u64)> = traces
                .iter()
                .map(|t| (t.scans, t.scan_passes, t.elementwise, t.permutes))
                .collect();
            for (r, tu) in tuples.iter().enumerate() {
                assert_eq!(
                    tu, &tuples[0],
                    "round {r} at n={n} on {name} spends a different primitive budget"
                );
            }
            tuples_by_size.push(tuples[0]);
        }
        assert_eq!(
            tuples_by_size[0], tuples_by_size[1],
            "per-round primitive budget depends on input size on {name}"
        );
    }
}

// ---------------------------------------------------------------------
// Random sweeps and metamorphic properties
// ---------------------------------------------------------------------

/// Points on a quantized lattice so coordinate duplicates actually occur.
fn arb_points() -> impl Strategy<Value = Vec<DomPoint>> {
    prop::collection::vec((0u32..24, 0u32..24, 0u64..100), 0..60).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (gx, gy, w))| pt(i as SegId, gx as f64 * 0.5, gy as f64 * 0.5, w))
            .collect()
    })
}

fn arb_queries() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-2i32..26, -2i32..26), 1..12).prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y)| (x as f64 * 0.5, y as f64 * 0.5))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Differential sweep: both pipelines match the brute oracle on both
    /// backends for random lattices (duplicates included).
    #[test]
    fn prop_matches_oracle(pts in arb_points(), queries in arb_queries()) {
        check_both(&pts, &queries);
    }

    /// Permutation invariance: reordering the input changes neither the
    /// skyline id-set nor any aggregate.
    #[test]
    fn prop_permutation_invariant(pts in arb_points(), queries in arb_queries(), seed in any::<u64>()) {
        let mut shuffled = pts.clone();
        // Deterministic Fisher–Yates from the seed.
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = ((s >> 33) as usize) % (i + 1);
            shuffled.swap(i, j);
        }
        for (name, m) in machines() {
            prop_assert_eq!(
                sky_sorted(&m, &pts),
                sky_sorted(&m, &shuffled),
                "skyline changed under permutation on {}", name
            );
            prop_assert_eq!(
                dominance_agg(&m, &pts, &queries),
                dominance_agg(&m, &shuffled, &queries),
                "aggregates changed under permutation on {}", name
            );
        }
    }

    /// Translation invariance: shifting points and queries by one vector
    /// changes nothing (dominance only compares coordinates).
    #[test]
    fn prop_translation_invariant(
        pts in arb_points(),
        queries in arb_queries(),
        dx in -50i32..50,
        dy in -50i32..50,
    ) {
        let (dx, dy) = (dx as f64 * 0.25, dy as f64 * 0.25);
        let moved: Vec<DomPoint> = pts.iter().map(|p| pt(p.id, p.x + dx, p.y + dy, p.w)).collect();
        let moved_q: Vec<(f64, f64)> = queries.iter().map(|&(x, y)| (x + dx, y + dy)).collect();
        for (name, m) in machines() {
            prop_assert_eq!(
                sky_sorted(&m, &pts),
                sky_sorted(&m, &moved),
                "skyline changed under translation on {}", name
            );
            prop_assert_eq!(
                dominance_agg(&m, &pts, &queries),
                dominance_agg(&m, &moved, &moved_q),
                "aggregates changed under translation on {}", name
            );
        }
    }

    /// Strictly monotone per-axis transforms preserve the dominance
    /// relation, hence the skyline id-set.
    #[test]
    fn prop_monotone_transform_preserves_skyline(pts in arb_points(), kx in 1u32..5, ky in 1u32..5) {
        let warped: Vec<DomPoint> = pts
            .iter()
            .map(|p| {
                // x -> kx·x + x³ and y -> exp(y/12)·ky are strictly
                // increasing on the lattice range.
                pt(
                    p.id,
                    kx as f64 * p.x + p.x * p.x * p.x,
                    (p.y / 12.0).exp() * ky as f64,
                    p.w,
                )
            })
            .collect();
        for (name, m) in machines() {
            prop_assert_eq!(
                sky_sorted(&m, &pts),
                sky_sorted(&m, &warped),
                "skyline changed under monotone transform on {}", name
            );
        }
    }

    /// Inserting a point dominated by an existing point never changes
    /// the skyline id-set.
    #[test]
    fn prop_dominated_insert_is_invisible(pts in arb_points(), pick in any::<u64>()) {
        if pts.is_empty() {
            return Ok(());
        }
        let host = pts[pick as usize % pts.len()];
        // Strictly below-left of a live point: dominated by it.
        let mut grown = pts.clone();
        grown.push(pt(10_000, host.x - 0.25, host.y - 0.25, 1));
        for (name, m) in machines() {
            prop_assert_eq!(
                sky_sorted(&m, &pts),
                sky_sorted(&m, &grown),
                "dominated insert changed the skyline on {}", name
            );
        }
    }
}
