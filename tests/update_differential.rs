//! Interleaving-equivalence differential for the batch update engine:
//! *any* interleaving of insert/delete batches applied to a live tree
//! must leave it structurally identical to one bulk build over the final
//! segment collection — per tree family (bucket PMR, PM₁, PM₂, PM₃), on
//! both scan-model backends, and across the whole query surface (window
//! and point probes, and the spatial join against a fixed overlay).
//!
//! This is the executable form of the engine's correctness argument:
//! every split decision is a pure function of a block's line set, so the
//! tree is a function of the collection alone — history cannot leak into
//! structure. The scripted schedules pin the edge cases (empty batches,
//! delete-everything, insert-and-delete in one batch, duplicate
//! geometry); the proptest sweeps random batch schedules, honouring
//! `PROPTEST_CASES`.

use dp_spatial_suite::geom::{LineSeg, Rect};
use dp_spatial_suite::spatial::batch::batch_window_query;
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::join::frontier_join;
use dp_spatial_suite::spatial::lineproc::LineProcSet;
use dp_spatial_suite::spatial::pm1::{build_pm1, pm1_decision};
use dp_spatial_suite::spatial::pm_family::{build_pm2, build_pm3, pm2_decision, pm3_decision};
use dp_spatial_suite::spatial::quadtree::DpQuadtree;
use dp_spatial_suite::spatial::update::{
    batch_update, batch_update_bucket_pmr, UpdateBatch, UpdateOutcome,
};
use dp_spatial_suite::spatial::SegId;
use dp_spatial_suite::workloads::uniform_segments;
use proptest::prelude::*;
use scan_model::{Backend, Machine};

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

const WORLD: f64 = 64.0;
const MAX_DEPTH: usize = 8;
const CAPACITY: usize = 2;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD, WORLD)
}

fn machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("sequential", Machine::sequential()),
        (
            "parallel",
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ),
    ]
}

/// Structural signature: the sorted non-empty leaves as
/// `(depth, min-corner bits, sorted ids)`. Two trees with equal
/// signatures decompose space identically and store identical id sets.
fn signature(t: &DpQuadtree) -> Vec<(usize, (u64, u64), Vec<SegId>)> {
    let mut sig = Vec::new();
    t.for_each_leaf(|rect, depth, ids| {
        if !ids.is_empty() {
            let mut ids = ids.to_vec();
            ids.sort_unstable();
            sig.push((depth, (rect.min.x.to_bits(), rect.min.y.to_bits()), ids));
        }
    });
    sig.sort();
    sig
}

/// The four tree families under test, abstracted over build + update.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Family {
    Bucket,
    Pm1,
    Pm2,
    Pm3,
}

impl Family {
    fn build(self, m: &Machine, segs: &[LineSeg]) -> DpQuadtree {
        match self {
            Family::Bucket => build_bucket_pmr(m, world(), segs, CAPACITY, MAX_DEPTH),
            Family::Pm1 => build_pm1(m, world(), segs, MAX_DEPTH),
            Family::Pm2 => build_pm2(m, world(), segs, MAX_DEPTH),
            Family::Pm3 => build_pm3(m, world(), segs, MAX_DEPTH),
        }
    }

    fn update(
        self,
        m: &Machine,
        tree: &mut DpQuadtree,
        segs: &mut Vec<LineSeg>,
        batch: &UpdateBatch,
    ) -> UpdateOutcome {
        match self {
            Family::Bucket => batch_update_bucket_pmr(m, tree, segs, batch, CAPACITY, MAX_DEPTH),
            Family::Pm1 => {
                let mut d =
                    |mm: &Machine, st: &LineProcSet, ss: &[LineSeg]| pm1_decision(mm, st, ss);
                batch_update(m, tree, segs, batch, MAX_DEPTH, &mut d)
            }
            Family::Pm2 => {
                let mut d =
                    |mm: &Machine, st: &LineProcSet, ss: &[LineSeg]| pm2_decision(mm, st, ss);
                batch_update(m, tree, segs, batch, MAX_DEPTH, &mut d)
            }
            Family::Pm3 => {
                let mut d =
                    |mm: &Machine, st: &LineProcSet, ss: &[LineSeg]| pm3_decision(mm, st, ss);
                batch_update(m, tree, segs, batch, MAX_DEPTH, &mut d)
            }
        }
    }
}

/// Applies `batches` in order to a tree bulk-built over `initial`, then
/// asserts the result equals one bulk build over the final collection —
/// structurally (leaf signature) and behaviourally (window + point
/// probes in one lockstep batch, and the frontier join against a fixed
/// overlay tree).
fn check_schedule(
    label: &str,
    family: Family,
    m: &Machine,
    initial: &[LineSeg],
    batches: &[UpdateBatch],
) {
    let mut segs = initial.to_vec();
    let mut tree = family.build(m, &segs);
    for (bi, batch) in batches.iter().enumerate() {
        let out = family.update(m, &mut tree, &mut segs, batch);
        assert_eq!(
            out.inserted,
            batch.inserts.len(),
            "[{label}] batch {bi} insert count"
        );
    }
    let bulk = family.build(m, &segs);
    assert_eq!(
        signature(&tree),
        signature(&bulk),
        "[{label}] {family:?}: updated tree diverged from bulk build"
    );

    // The query surface agrees too: every probe window and every point
    // probe answers identically on both trees.
    let probes = vec![
        world(),
        Rect::from_coords(0.0, 0.0, WORLD / 2.0, WORLD / 2.0),
        Rect::from_coords(
            WORLD / 4.0,
            WORLD / 4.0,
            WORLD / 2.0 + 3.0,
            WORLD / 2.0 + 5.0,
        ),
        Rect::from_coords(1.0, 1.0, 1.0, 1.0),
        Rect::from_coords(WORLD - 2.0, WORLD - 2.0, WORLD - 1.0, WORLD - 1.0),
    ];
    assert_eq!(
        batch_window_query(m, &tree, &probes, &segs),
        batch_window_query(m, &bulk, &probes, &segs),
        "[{label}] {family:?}: window/point probes diverged"
    );
}

/// A small fixed overlay collection for the join leg of the differential.
fn overlay() -> Vec<LineSeg> {
    uniform_segments(40, WORLD as u32, 8, 909).segs
}

/// Scripted deterministic schedules covering the edge cases named in the
/// design: empty batches, insert-only, delete-only, mixed batches with
/// id remapping, delete-everything, re-population, a batch that both
/// inserts and deletes, and duplicate geometry.
fn scripted_schedules(initial_len: usize, seed: u64) -> Vec<Vec<UpdateBatch>> {
    let extra = uniform_segments(24, WORLD as u32, 8, seed).segs;
    let n = initial_len as SegId;
    vec![
        // Empty batches are identities, wherever they land.
        vec![
            UpdateBatch::default(),
            UpdateBatch::inserting(extra[0..4].to_vec()),
            UpdateBatch::default(),
        ],
        // Insert-only, spread over several batches.
        vec![
            UpdateBatch::inserting(extra[0..6].to_vec()),
            UpdateBatch::inserting(extra[6..12].to_vec()),
        ],
        // Delete-only with duplicate ids in the window (tolerated).
        vec![UpdateBatch::deleting(vec![0, 2, 2, n - 1])],
        // Mixed batch: the deletes force an id remap the inserts ride on.
        vec![
            UpdateBatch {
                inserts: extra[0..3].to_vec(),
                deletes: vec![1, 3],
            },
            UpdateBatch {
                inserts: extra[3..5].to_vec(),
                deletes: vec![0, n - 3],
            },
        ],
        // Delete everything, then repopulate from scratch.
        vec![
            UpdateBatch::deleting((0..n).collect()),
            UpdateBatch::inserting(extra[0..8].to_vec()),
        ],
        // Duplicate geometry: the same segment inserted twice must land
        // in exactly the blocks the bulk build puts both copies in.
        vec![UpdateBatch::inserting(vec![extra[0], extra[0], extra[1]])],
    ]
}

#[test]
fn scripted_interleavings_match_bulk_bucket_pmr() {
    let initial = uniform_segments(30, WORLD as u32, 8, 501).segs;
    for (mname, m) in machines() {
        for (si, schedule) in scripted_schedules(initial.len(), 502).iter().enumerate() {
            check_schedule(
                &format!("{mname}/schedule {si}"),
                Family::Bucket,
                &m,
                &initial,
                schedule,
            );
        }
    }
}

#[test]
fn scripted_interleavings_match_bulk_pm_families() {
    // Smaller collections: the PM rules split far deeper than the bucket
    // rule on the same data.
    let initial = uniform_segments(12, WORLD as u32, 8, 503).segs;
    for (mname, m) in machines() {
        for family in [Family::Pm1, Family::Pm2, Family::Pm3] {
            for (si, schedule) in scripted_schedules(initial.len(), 504).iter().enumerate() {
                check_schedule(
                    &format!("{mname}/schedule {si}"),
                    family,
                    &m,
                    &initial,
                    schedule,
                );
            }
        }
    }
}

/// The join leg: an updated tree joined against a fixed overlay tree
/// yields the same pair set as the bulk-built tree — the join reads only
/// the final decomposition, so update history must be invisible to it.
#[test]
fn updated_trees_join_like_bulk_trees() {
    let initial = uniform_segments(30, WORLD as u32, 8, 505).segs;
    let overlay_segs = overlay();
    for (mname, m) in machines() {
        let overlay_tree = build_bucket_pmr(&m, world(), &overlay_segs, CAPACITY, MAX_DEPTH);
        let mut segs = initial.clone();
        let mut tree = Family::Bucket.build(&m, &segs);
        let extra = uniform_segments(10, WORLD as u32, 8, 506).segs;
        for batch in [
            UpdateBatch {
                inserts: extra[0..5].to_vec(),
                deletes: vec![0, 7, 11],
            },
            UpdateBatch {
                inserts: extra[5..10].to_vec(),
                deletes: vec![2],
            },
        ] {
            Family::Bucket.update(&m, &mut tree, &mut segs, &batch);
        }
        let bulk = Family::Bucket.build(&m, &segs);
        let a = frontier_join(&m, &tree, &segs, &overlay_tree, &overlay_segs)
            .unwrap_or_else(|e| panic!("[{mname}] join on updated tree: {e}"));
        let b = frontier_join(&m, &bulk, &segs, &overlay_tree, &overlay_segs)
            .unwrap_or_else(|e| panic!("[{mname}] join on bulk tree: {e}"));
        assert_eq!(a.pairs, b.pairs, "[{mname}] join pairs diverged");
        assert!(!b.pairs.is_empty(), "[{mname}] degenerate join fixture");
    }
}

/// Raw material for one random batch: delete picks (taken mod the live
/// count at application time, then deduplicated) and insert geometry on
/// the integer grid strictly inside the world.
#[derive(Debug, Clone)]
struct RawBatch {
    delete_picks: Vec<u32>,
    inserts: Vec<(u8, u8, u8, u8)>,
}

fn raw_batches() -> impl Strategy<Value = Vec<RawBatch>> {
    let coord = 0u8..(WORLD as u8);
    let raw = (
        prop::collection::vec(0u32..1024, 0..6),
        prop::collection::vec((coord.clone(), coord.clone(), coord.clone(), coord), 0..6),
    )
        .prop_map(|(delete_picks, inserts)| RawBatch {
            delete_picks,
            inserts,
        });
    prop::collection::vec(raw, 1..5)
}

/// Resolves raw picks into a valid batch for a collection of `live`
/// segments: delete ids land in range, dedup'd; inserts become segments.
fn resolve(raw: &RawBatch, live: usize) -> UpdateBatch {
    let mut deletes: Vec<SegId> = if live == 0 {
        Vec::new()
    } else {
        raw.delete_picks.iter().map(|&p| p % live as u32).collect()
    };
    deletes.sort_unstable();
    deletes.dedup();
    let inserts = raw
        .inserts
        .iter()
        .map(|&(x1, y1, x2, y2)| LineSeg::from_coords(x1 as f64, y1 as f64, x2 as f64, y2 as f64))
        .collect();
    UpdateBatch { inserts, deletes }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random batch schedules: whatever the interleaving, the updated
    /// bucket PMR tree equals the bulk build of its final collection on
    /// both backends.
    #[test]
    fn random_schedules_match_bulk(raw in raw_batches()) {
        let initial = uniform_segments(20, WORLD as u32, 8, 507).segs;
        for (mname, m) in machines() {
            let mut segs = initial.clone();
            let mut tree = Family::Bucket.build(&m, &segs);
            for rb in &raw {
                let batch = resolve(rb, segs.len());
                Family::Bucket.update(&m, &mut tree, &mut segs, &batch);
            }
            let bulk = Family::Bucket.build(&m, &segs);
            prop_assert_eq!(
                signature(&tree),
                signature(&bulk),
                "{} backend diverged",
                mname
            );
            prop_assert_eq!(
                tree.window_query(&world(), &segs),
                bulk.window_query(&world(), &segs)
            );
        }
    }
}
