//! Deterministic fault-injection differential suite.
//!
//! Every test follows the same shape: run a workload fault-free, run it
//! again under a seeded [`FaultPlan`] (worker-closure panics, scratch
//! arena pressure, per-round aborts, poisoned requests), and assert the
//! faulted-then-recovered run answers **bit-identically** — recovery is
//! only correct if it is invisible. The headline is the
//! kill-at-round-`k` sweep: a PM₁ build over 50 000 segments is aborted
//! at every single round in turn, rebuilt on the same machine, and the
//! rebuilt tree compared node-for-node against the never-faulted one,
//! with the plan's counters proving each injected fault fired exactly
//! once.
//!
//! Fault decisions are pure functions of `(seed, site, occurrence)`, so
//! the whole suite replays: `FAULT_SEED=<n> cargo test --test
//! fault_injection` pins the seeded-matrix case to a chosen seed (the CI
//! fault-matrix job runs three fixed seeds plus a job-derived one) and
//! writes its trace to `target/fault-trace-<n>.log`.

use dp_geom::{clip_segment_closed, Rect};
use dp_service::{brute_knearest, QueryService, QueryServiceConfig, RecoveryAction, Response};
use dp_spatial::pm1::build_pm1;
use dp_spatial::{SegId, SpatialError};
use dp_workloads::{
    clustered_segments, poison_stream, polygon_rings, request_stream, request_stream_with_updates,
    road_network, uniform_segments, Dataset, Request, RequestMix,
};
use proptest::prelude::*;
use scan_model::{
    Backend, FaultMode, FaultPlan, FaultSite, InjectedFault, Machine, WorkerFaultGuard,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// The workload families the service differential suite covers, sized
/// for fast brute-force checking.
fn families() -> Vec<Dataset> {
    vec![
        uniform_segments(250, 64, 8, 101),
        clustered_segments(220, 8, 10, 64, 102),
        road_network(8, 64, 103),
        polygon_rings(6, 64, 104),
    ]
}

fn backends() -> Vec<(Backend, Option<usize>)> {
    // par_threshold 1 forces the pool onto even these small datasets.
    vec![(Backend::Sequential, None), (Backend::Parallel, Some(1))]
}

fn config_for(backend: Backend, par_threshold: Option<usize>) -> QueryServiceConfig {
    QueryServiceConfig {
        shard_grid: 2,
        flush_batch: 64,
        backend,
        par_threshold,
        ..QueryServiceConfig::default()
    }
}

/// One shard's deterministic stats row: (shard, segments, probes, batches,
/// max_queue_depth, degraded, retries, rebuilds, faults_injected).
type StatsRow = (usize, usize, u64, u64, u64, bool, u64, u64, u64);

/// The deterministic projection of a service's stats: everything except
/// wall-clock-dependent fields (latency histograms) and per-machine op
/// counters (which legitimately differ across backends).
fn stats_projection(svc: &QueryService) -> Vec<StatsRow> {
    svc.stats()
        .shards
        .iter()
        .map(|s| {
            (
                s.shard,
                s.segments,
                s.probes,
                s.batches,
                s.max_queue_depth,
                s.degraded,
                s.retries,
                s.rebuilds,
                s.faults_injected,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Headline: kill-at-round-k sweep over a 50k-segment PM₁ build.
// ---------------------------------------------------------------------

/// Aborts a PM₁ build at round `k` for *every* `k`, rebuilds on the very
/// same machine, and demands the rebuilt tree equal the never-faulted
/// tree node for node — on both backends. The `RoundAbort` occurrence
/// index is the machine-global round-driver step count, so
/// `FaultPlan::once_at(RoundAbort, k)` is precisely "kill the build at
/// round k", and `fired() == 1` after the rebuild proves the fault was
/// injected exactly once and never re-fired during recovery.
#[test]
fn kill_at_every_round_rebuilds_identically() {
    let data = uniform_segments(50_000, 1024, 16, 4242);
    let max_depth = 8;
    for (backend, par_threshold) in backends() {
        let make = |plan: Arc<FaultPlan>| {
            let m = match par_threshold {
                Some(t) => Machine::new(backend).with_par_threshold(t),
                None => Machine::new(backend),
            };
            m.with_fault_plan(plan)
        };

        // Fault-free baseline; the disabled plan still counts round-abort
        // decision points, which is exactly the number of rounds to sweep.
        let counting = Arc::new(FaultPlan::disabled());
        let baseline_machine = make(counting.clone());
        let baseline = build_pm1(&baseline_machine, data.world, &data.segs, max_depth);
        let rounds = counting.occurrences(FaultSite::RoundAbort);
        assert!(rounds > 1, "sweep needs a multi-round build, got {rounds}");
        eprintln!(
            "kill sweep: {} segments, {rounds} rounds on {backend:?}",
            data.segs.len()
        );

        for k in 0..rounds {
            let plan = Arc::new(FaultPlan::once_at(FaultSite::RoundAbort, k));
            let machine = make(plan.clone());
            let crash = catch_unwind(AssertUnwindSafe(|| {
                build_pm1(&machine, data.world, &data.segs, max_depth)
            }));
            let payload = crash.expect_err("build must abort at the injected round");
            let fault = payload
                .downcast_ref::<InjectedFault>()
                .expect("abort payload is the typed InjectedFault");
            assert_eq!(fault.site, FaultSite::RoundAbort, "round {k}");
            assert_eq!(fault.occurrence, k, "round {k}");
            assert_eq!(plan.fired(FaultSite::RoundAbort), 1, "round {k}");

            // Recovery: clear the partial round traces and rebuild on the
            // SAME machine — the abort must not have poisoned it. The
            // plan's occurrence counter kept advancing, so the once-at
            // fault cannot re-fire mid-rebuild.
            machine.take_round_traces();
            let rebuilt = build_pm1(&machine, data.world, &data.segs, max_depth);
            assert_eq!(rebuilt, baseline, "kill at round {k}: rebuilt tree differs");
            assert_eq!(
                plan.fired(FaultSite::RoundAbort),
                1,
                "round {k}: fault re-fired during recovery"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fault-free plumbing is invisible.
// ---------------------------------------------------------------------

#[test]
fn disabled_plan_changes_nothing() {
    for data in families() {
        let cfg = config_for(Backend::Sequential, None);
        let plain = QueryService::build(cfg, data.world, data.segs.clone());
        let planned = QueryService::try_build_with_faults(
            cfg,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
        )
        .expect("disabled plan validates");
        let reqs = request_stream(data.world, 80, RequestMix::DEFAULT, 7);
        assert_eq!(plain.execute_batch(&reqs), planned.execute_batch(&reqs));
        assert!(planned.recovery_events().is_empty());
        assert_eq!(planned.stats().total_faults_injected(), 0);
        assert_eq!(planned.stats().degraded_shards(), 0);
    }
}

// ---------------------------------------------------------------------
// Site × family × backend differential matrix.
// ---------------------------------------------------------------------

/// `RoundAbort` at occurrence 0 kills every shard's *first* build
/// attempt (each shard's plan fork counts occurrences from 0); the build
/// ladder retries and the recovered service must answer identically.
#[test]
fn build_abort_retries_and_answers_identically() {
    for data in families() {
        for (backend, par_threshold) in backends() {
            let cfg = config_for(backend, par_threshold);
            let baseline = QueryService::build(cfg, data.world, data.segs.clone());
            let plan = Arc::new(FaultPlan::once_at(FaultSite::RoundAbort, 0));
            let faulted = QueryService::try_build_with_faults(
                cfg,
                data.world,
                data.segs.clone(),
                Vec::new(),
                plan,
            )
            .expect("builds recover; only validation can error");
            let reqs = request_stream(data.world, 90, RequestMix::DEFAULT, 11);
            assert_eq!(
                baseline.execute_batch(&reqs),
                faulted.execute_batch(&reqs),
                "{} on {backend:?}",
                data.name
            );
            for s in &faulted.stats().shards {
                assert!(!s.degraded, "{} shard {}", data.name, s.shard);
                assert_eq!(s.faults_injected, 1, "{} shard {}", data.name, s.shard);
                assert_eq!(s.retries, 1, "{} shard {}", data.name, s.shard);
            }
            let events = faulted.recovery_events();
            assert_eq!(
                events
                    .iter()
                    .filter(|e| matches!(e.action, RecoveryAction::Retry(_)))
                    .count(),
                faulted.num_shards(),
                "{}",
                data.name
            );
        }
    }
}

/// `ArenaOverflow` never panics — it evicts the scratch arena to its
/// floor mid-flight. Every build and query must complete identically
/// with the fault firing on every single round.
#[test]
fn arena_overflow_is_silently_absorbed() {
    for data in families() {
        for (backend, par_threshold) in backends() {
            let cfg = config_for(backend, par_threshold);
            let baseline = QueryService::build(cfg, data.world, data.segs.clone());
            let plan = Arc::new(FaultPlan::always(FaultSite::ArenaOverflow));
            let faulted = QueryService::try_build_with_faults(
                cfg,
                data.world,
                data.segs.clone(),
                Vec::new(),
                plan,
            )
            .expect("arena pressure is recoverable");
            let reqs = request_stream(data.world, 90, RequestMix::DEFAULT, 13);
            assert_eq!(
                baseline.execute_batch(&reqs),
                faulted.execute_batch(&reqs),
                "{} on {backend:?}",
                data.name
            );
            let stats = faulted.stats();
            assert!(stats.total_faults_injected() > 0, "{}", data.name);
            assert_eq!(stats.degraded_shards(), 0, "{}", data.name);
            for s in &stats.shards {
                assert_eq!(s.retries, 0, "{} shard {}", data.name, s.shard);
            }
            assert!(faulted.recovery_events().is_empty(), "{}", data.name);
        }
    }
}

/// Poisoned requests are rejected per slot with a typed error; the
/// surviving slots answer bit-identically to the fault-free run.
#[test]
fn poisoned_requests_reject_without_collateral() {
    for data in families() {
        for (backend, par_threshold) in backends() {
            let cfg = config_for(backend, par_threshold);
            let svc = QueryService::build(cfg, data.world, data.segs.clone());
            let clean = request_stream(data.world, 120, RequestMix::DEFAULT, 17);
            let baseline = svc.execute_batch(&clean);

            let mut poisoned = clean.clone();
            let plan = FaultPlan::new(909)
                .with(FaultSite::PoisonedRequest, FaultMode::Seeded { rate: 0.2 });
            let n = poison_stream(&mut poisoned, &plan);
            assert!(n > 0, "rate 0.2 over 120 requests must poison some");
            let out = svc.execute_batch(&poisoned);
            let mut rejected = 0;
            for (i, resp) in out.iter().enumerate() {
                if poisoned[i] == clean[i] {
                    assert_eq!(resp, &baseline[i], "{} slot {i}", data.name);
                } else {
                    rejected += 1;
                    assert!(
                        matches!(
                            resp,
                            Response::Rejected(SpatialError::MalformedRequest { index, .. })
                                if *index == i
                        ),
                        "{} slot {i}: {resp:?}",
                        data.name
                    );
                }
            }
            assert_eq!(rejected, n, "{}", data.name);
        }
    }
}

/// Worker-closure panics injected inside the thread pool: probes and
/// joins crash mid-flight, the ladder retries (and rebuilds or degrades
/// if it keeps dying), and the answers never change. Worker-fault timing
/// is thread-schedule-dependent, so this asserts recovery invisibility,
/// not fault counts.
#[test]
fn worker_panics_recover_to_identical_answers() {
    let data = uniform_segments(250, 64, 8, 301);
    let overlay = uniform_segments(150, 64, 8, 302);
    let cfg = config_for(Backend::Parallel, Some(1));
    let baseline =
        QueryService::build_with_overlay(cfg, data.world, data.segs.clone(), overlay.segs.clone());
    let reqs = request_stream(data.world, 100, RequestMix::WITH_JOINS, 19);
    let expected = baseline.execute_batch(&reqs);

    for seed in [1u64, 2, 3] {
        let plan = Arc::new(
            FaultPlan::new(seed).with(FaultSite::WorkerPanic, FaultMode::Seeded { rate: 0.03 }),
        );
        // The guard arms the current thread: pool jobs submitted below —
        // service fan-outs and machine primitives alike — consult the
        // plan and panic where it fires. It is process-serializing, so
        // parallel test binaries stay unaffected.
        let _guard = WorkerFaultGuard::install(plan.clone());
        let faulted = QueryService::build_with_overlay(
            cfg,
            data.world,
            data.segs.clone(),
            overlay.segs.clone(),
        );
        let out = faulted.execute_batch(&reqs);
        assert_eq!(out, expected, "worker-panic seed {seed}");
        assert!(
            plan.fired(FaultSite::WorkerPanic) > 0,
            "seed {seed}: the plan never actually injected a panic"
        );
    }
}

/// A shard whose every build and rebuild attempt dies degrades to the
/// sequential oracle — and the oracle's answers (windows, points, k-NN
/// and brute-force joins) are bit-identical to a healthy service's.
#[test]
fn permanent_failure_degrades_to_identical_answers() {
    let data = uniform_segments(250, 64, 8, 401);
    let overlay = uniform_segments(150, 64, 8, 402);
    for (backend, par_threshold) in backends() {
        let cfg = config_for(backend, par_threshold);
        let healthy = QueryService::build_with_overlay(
            cfg,
            data.world,
            data.segs.clone(),
            overlay.segs.clone(),
        );
        let plan = Arc::new(FaultPlan::always(FaultSite::RoundAbort));
        let dead = QueryService::try_build_with_faults(
            cfg,
            data.world,
            data.segs.clone(),
            overlay.segs.clone(),
            plan,
        )
        .expect("permanent failure degrades, not errors");
        let stats = dead.stats();
        assert_eq!(stats.degraded_shards(), dead.num_shards());
        assert!(dead
            .recovery_events()
            .iter()
            .any(|e| e.action == RecoveryAction::Degrade));

        let reqs = request_stream(data.world, 100, RequestMix::WITH_JOINS, 23);
        assert_eq!(
            healthy.execute_batch(&reqs),
            dead.execute_batch(&reqs),
            "degraded answers diverge on {backend:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Epoch compaction under fire: kill-at-every-round sweep.
// ---------------------------------------------------------------------

/// One fixed write burst for the compaction sweep: inserts landing in
/// several tiles plus deletes of epoch-base segments.
fn compaction_writes(n: u32) -> Vec<Request> {
    use dp_geom::LineSeg;
    let mut reqs: Vec<Request> = uniform_segments(12, 64, 8, 701)
        .segs
        .into_iter()
        .map(Request::Insert)
        .collect();
    reqs.push(Request::Delete(0));
    reqs.push(Request::Delete(n / 2));
    reqs.push(Request::Insert(LineSeg::from_coords(1.0, 1.0, 5.0, 3.0)));
    reqs
}

/// Kill-at-every-round sweep over an epoch compaction. For every abort
/// occurrence `k` until faults stop firing: build a service whose fault
/// plan aborts each fork's round `k`, push the same write burst through
/// (the overlay ladder's bulk-rebuild fallback absorbs ladder aborts, so
/// every write still succeeds), and force a compaction. If the
/// compaction crashes, the *old* epoch must keep serving correct
/// answers, the failure must be counted, and — because every fault-plan
/// fork keeps its occurrence counters across attempts — an immediate
/// retry must converge. After the sweep every service answers
/// identically to the never-faulted baseline on the compacted epoch.
#[test]
fn compaction_kill_sweep_converges_to_clean_epoch() {
    let data = uniform_segments(120, 64, 8, 702);
    let n = data.segs.len() as u32;
    let cfg = QueryServiceConfig {
        shard_grid: 2,
        compact_threshold: 1_000, // only explicit compact_now() compacts
        ..QueryServiceConfig::sequential(2)
    };
    let reads = request_stream(data.world, 60, RequestMix::DEFAULT, 703);

    // Clean baseline: writes, compaction, reads.
    let baseline_svc = QueryService::build(cfg, data.world, data.segs.clone());
    for resp in baseline_svc.execute_batch(&compaction_writes(n)) {
        assert!(
            !matches!(resp, Response::Rejected(_)),
            "clean write rejected: {resp:?}"
        );
    }
    baseline_svc.compact_now().expect("clean compaction");
    let baseline = baseline_svc.execute_batch(&reads);
    let oracle_segs = baseline_svc.segments();

    let mut crashed_compactions = 0u64;
    let mut swept = 0u64;
    for k in 0..400u64 {
        let plan = Arc::new(FaultPlan::once_at(FaultSite::RoundAbort, k));
        let svc = QueryService::try_build_with_faults(
            cfg,
            data.world,
            data.segs.clone(),
            Vec::new(),
            plan,
        )
        .expect("builds recover; only validation can error");
        for resp in svc.execute_batch(&compaction_writes(n)) {
            assert!(
                !matches!(resp, Response::Rejected(_)),
                "k={k}: ladder fallback must absorb the abort, got {resp:?}"
            );
        }
        match svc.compact_now() {
            Ok(epoch) => assert_eq!(epoch, 1, "k={k}"),
            Err(e) => {
                crashed_compactions += 1;
                let stats = svc.stats();
                assert_eq!(
                    stats.epoch, 0,
                    "k={k}: failed compaction must not swap ({e})"
                );
                assert_eq!(stats.failed_compactions, 1, "k={k}");
                // The pre-compaction overlay keeps serving correctly...
                assert_eq!(
                    svc.execute_batch(&reads),
                    baseline,
                    "k={k}: old epoch corrupt"
                );
                // ...and retrying converges. One retry is not always
                // enough: the first crash stops the state build early, so
                // a *later* shard's fork (its counters still short of k)
                // can fire on the next attempt. But each fork fires a
                // once-at fault at most once, so attempts are bounded by
                // the fork count: shards + ladder.
                let mut converged = false;
                for _ in 0..svc.num_shards() + 1 {
                    if svc.compact_now() == Ok(1) {
                        converged = true;
                        break;
                    }
                }
                assert!(converged, "k={k}: compaction retries did not converge");
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.epoch, 1, "k={k}");
        assert_eq!((stats.overlay_size, stats.tombstones), (0, 0), "k={k}");
        assert_eq!(
            svc.execute_batch(&reads),
            baseline,
            "k={k}: compacted epoch diverges"
        );
        assert_eq!(svc.segments(), oracle_segs, "k={k}");
        swept = k + 1;
        if stats.total_faults_injected() == 0 {
            break; // k ran past every fork's round count: sweep complete
        }
    }
    assert!(swept >= 2, "sweep ended after {swept} occurrences");
    assert!(
        crashed_compactions > 0,
        "no abort ever landed inside a compaction — the sweep proved nothing"
    );
}

/// Kill-at-every-occurrence sweep over the *background* compactor.
/// Writes admitted through a pipelined lane defer compaction to the
/// off-thread compactor; a seeded fault plan aborts compaction round
/// `k` there. The guarantees under fire: every admitted write still
/// succeeds (the recovery ladder absorbs aborts), reads served through
/// the pipeline while the compactor crashes off-thread match the eager
/// baseline (the old epoch keeps serving — readers never block on a
/// doomed rebuild), the crash is counted, and foreground retries after
/// the pipeline drains converge to a clean compacted epoch identical to
/// the never-faulted one.
#[test]
fn kill_during_background_compaction_keeps_readers_serving() {
    use dp_service::{AdmissionPolicy, ServicePipeline};
    use std::time::{Duration, Instant};

    let data = uniform_segments(120, 64, 8, 702);
    let n = data.segs.len() as u32;
    // One admission lane: per-lane FIFO makes the pipelined write order
    // exactly the eager order (logical delete ids shift on delete, so
    // write order is semantics, not scheduling).
    let cfg = QueryServiceConfig {
        shard_grid: 2,
        compact_threshold: 4, // the write burst trips the compactor
        ..QueryServiceConfig::sequential(2)
    };
    let reads = request_stream(data.world, 40, RequestMix::DEFAULT, 703);

    // Clean eager baseline: same writes, explicit compaction, reads.
    let baseline_svc = QueryService::build(
        QueryServiceConfig {
            compact_threshold: 1_000,
            ..cfg
        },
        data.world,
        data.segs.clone(),
    );
    for resp in baseline_svc.execute_batch(&compaction_writes(n)) {
        assert!(
            !matches!(resp, Response::Rejected(_)),
            "clean write: {resp:?}"
        );
    }
    baseline_svc.compact_now().expect("clean compaction");
    let baseline = baseline_svc.execute_batch(&reads);
    let oracle_segs = baseline_svc.segments();

    let mut crashed_background = 0u64;
    let mut swept = 0u64;
    for k in 0..400u64 {
        let plan = Arc::new(FaultPlan::once_at(FaultSite::RoundAbort, k));
        let svc = Arc::new(
            QueryService::try_build_with_faults(
                cfg,
                data.world,
                data.segs.clone(),
                Vec::new(),
                plan,
            )
            .expect("builds recover; only validation can error"),
        );
        {
            let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
            for resp in pipeline.submit_all(&compaction_writes(n)) {
                assert!(
                    !matches!(resp, Response::Rejected(_)),
                    "k={k}: ladder fallback must absorb the abort, got {resp:?}"
                );
            }
            // The compactor was signalled (threshold 4 against ~15
            // writes); wait until it attempted at least once so the
            // read probe below really races a background outcome.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let s = svc.stats();
                if s.compactions + s.failed_compactions > 0 {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "k={k}: background compactor never attempted"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            // Whatever the compactor did off-thread — swapped a clean
            // epoch or crashed and left the old one — pipelined readers
            // see exactly the eager answers.
            assert_eq!(
                pipeline.submit_all(&reads),
                baseline,
                "k={k}: reads diverged during background compaction"
            );
        } // drop joins the lane worker and the compactor
        let stats = svc.stats();
        if stats.failed_compactions > 0 {
            crashed_background += 1;
            // A crashed background compaction must not have swapped.
            assert_eq!(
                svc.execute_batch(&reads),
                baseline,
                "k={k}: old epoch corrupt after background crash"
            );
        }
        // Foreground retries converge (each fault-plan fork fires its
        // once-at fault at most once, so attempts are bounded by the
        // fork count: shards + ladder).
        let mut attempts = 0;
        while svc.stats().overlay_size + svc.stats().tombstones > 0 || svc.stats().epoch == 0 {
            attempts += 1;
            assert!(
                attempts <= svc.num_shards() + 2,
                "k={k}: compaction retries did not converge"
            );
            let _ = svc.compact_now();
        }
        assert_eq!(
            svc.execute_batch(&reads),
            baseline,
            "k={k}: compacted epoch diverges"
        );
        assert_eq!(svc.segments(), oracle_segs, "k={k}");
        swept = k + 1;
        if svc.stats().total_faults_injected() == 0 {
            break; // k ran past every fork's round count: sweep complete
        }
    }
    assert!(swept >= 2, "sweep ended after {swept} occurrences");
    assert!(
        crashed_background > 0,
        "no abort ever landed inside a background compaction — the sweep proved nothing"
    );
}

/// Poisoned write requests (NaN insert geometry, out-of-range delete
/// ids) are rejected per slot with typed errors and leave the overlay
/// untouched: every slot — reads included — matches an eager oracle that
/// applies exactly the writes the service accepted.
#[test]
fn poisoned_writes_reject_without_corrupting_the_overlay() {
    let data = uniform_segments(150, 64, 8, 801);
    for (backend, par_threshold) in backends() {
        let cfg = QueryServiceConfig {
            compact_threshold: 12, // compactions happen mid-stream
            ..config_for(backend, par_threshold)
        };
        let svc = QueryService::build(cfg, data.world, data.segs.clone());
        let clean = request_stream_with_updates(
            data.world,
            140,
            RequestMix::WITH_UPDATES,
            802,
            data.segs.len(),
        );
        let mut poisoned = clean.clone();
        let plan =
            FaultPlan::new(803).with(FaultSite::PoisonedRequest, FaultMode::Seeded { rate: 0.15 });
        let n_poisoned = poison_stream(&mut poisoned, &plan);
        assert!(
            n_poisoned > 0,
            "rate 0.15 over 140 requests must poison some"
        );

        let out = svc.execute_batch(&poisoned);
        let mut live = data.segs.clone();
        let mut rejected = 0;
        for (i, (r, resp)) in poisoned.iter().zip(&out).enumerate() {
            let was_poisoned = poisoned[i] != clean[i];
            match r {
                Request::Window(q) => {
                    if was_poisoned {
                        assert!(matches!(resp, Response::Rejected(_)), "slot {i}");
                        rejected += 1;
                    } else {
                        let brute: Vec<SegId> = (0..live.len() as SegId)
                            .filter(|&id| clip_segment_closed(&live[id as usize], q).is_some())
                            .collect();
                        assert_eq!(resp.try_window(i), Ok(brute.as_slice()), "slot {i}");
                    }
                }
                Request::PointInWindow(p) => {
                    if was_poisoned {
                        assert!(matches!(resp, Response::Rejected(_)), "slot {i}");
                        rejected += 1;
                    } else {
                        let q = Rect::point(*p);
                        let brute: Vec<SegId> = (0..live.len() as SegId)
                            .filter(|&id| clip_segment_closed(&live[id as usize], &q).is_some())
                            .collect();
                        assert_eq!(
                            resp.try_point_in_window(i),
                            Ok(brute.as_slice()),
                            "slot {i}"
                        );
                    }
                }
                Request::KNearest { p, k } => {
                    if was_poisoned {
                        assert!(matches!(resp, Response::Rejected(_)), "slot {i}");
                        rejected += 1;
                    } else {
                        let expected = brute_knearest(&live, *p, *k);
                        assert_eq!(resp.try_knearest(i), Ok(expected.as_slice()), "slot {i}");
                    }
                }
                Request::Join(_) | Request::Skyline(_) | Request::DominanceAgg(_) => {
                    unreachable!("WITH_UPDATES carries no joins or dominance requests")
                }
                Request::Insert(seg) => {
                    if was_poisoned {
                        // NaN geometry: typed rejection, overlay untouched.
                        assert!(
                            matches!(
                                resp,
                                Response::Rejected(SpatialError::MalformedRequest {
                                    index, ..
                                }) if *index == i
                            ),
                            "slot {i}: {resp:?}"
                        );
                        rejected += 1;
                    } else {
                        assert_eq!(resp.try_inserted(i), Ok(live.len() as SegId), "slot {i}");
                        live.push(*seg);
                    }
                }
                Request::Delete(id) => {
                    // A poisoned delete names u32::MAX; an unpoisoned one
                    // can still run out of range when earlier poisoned
                    // deletes kept their targets alive. One rule decides
                    // both, for the service and the oracle alike.
                    if (*id as usize) < live.len() {
                        assert_eq!(resp.try_deleted(i), Ok(*id), "slot {i}");
                        live.remove(*id as usize);
                    } else {
                        assert!(
                            matches!(
                                resp,
                                Response::Rejected(SpatialError::MalformedRequest {
                                    index, ..
                                }) if *index == i
                            ),
                            "slot {i}: {resp:?}"
                        );
                        rejected += 1;
                    }
                }
            }
        }
        assert!(rejected >= n_poisoned, "{backend:?}");
        assert_eq!(svc.segments(), live, "{backend:?}: overlay corrupted");
        // A fresh read batch over the converged state stays correct.
        let probe: Vec<SegId> = (0..live.len() as SegId)
            .filter(|&id| clip_segment_closed(&live[id as usize], &data.world).is_some())
            .collect();
        let out = svc.execute_batch(&[Request::Window(data.world)]);
        assert_eq!(out[0].try_window(0), Ok(probe.as_slice()), "{backend:?}");
    }
}

// ---------------------------------------------------------------------
// Satellite: scratch-arena cap overflow never poisons later builds.
// ---------------------------------------------------------------------

/// `ArenaOverflow` on every round crushes the arena cap to its floor and
/// evicts everything, mid-build. The build must still complete — and a
/// *second* build on the same machine must too, proving the pressure
/// left no lasting damage (the arena re-allocates and its cap regrows
/// from demand).
#[test]
fn arena_cap_overflow_never_poisons_the_machine() {
    let data = uniform_segments(5_000, 256, 8, 501);
    for (backend, par_threshold) in backends() {
        let make = |plan: Arc<FaultPlan>| {
            let m = match par_threshold {
                Some(t) => Machine::new(backend).with_par_threshold(t),
                None => Machine::new(backend),
            };
            m.with_fault_plan(plan)
        };
        let baseline = build_pm1(
            &make(Arc::new(FaultPlan::disabled())),
            data.world,
            &data.segs,
            8,
        );

        let plan = Arc::new(FaultPlan::always(FaultSite::ArenaOverflow));
        let machine = make(plan.clone());
        let first = build_pm1(&machine, data.world, &data.segs, 8);
        assert_eq!(first, baseline, "{backend:?}: pressured build differs");
        let fired_once = plan.fired(FaultSite::ArenaOverflow);
        assert!(fired_once > 0, "{backend:?}: pressure never applied");
        assert_eq!(
            fired_once,
            plan.occurrences(FaultSite::ArenaOverflow),
            "always-mode must fire on every round"
        );

        // Same machine, straight after the pressured run.
        machine.take_round_traces();
        let second = build_pm1(&machine, data.world, &data.segs, 8);
        assert_eq!(second, baseline, "{backend:?}: follow-up build poisoned");
        assert!(plan.fired(FaultSite::ArenaOverflow) > fired_once);
    }
}

// ---------------------------------------------------------------------
// Satellite: seeded fault streams are deterministic (property tests).
// ---------------------------------------------------------------------

/// Builds a faulted service over a fixed collection and runs a poisoned
/// stream through it; everything is derived from `fault_seed` and
/// `stream_seed` alone.
fn seeded_run(
    backend: Backend,
    par_threshold: Option<usize>,
    fault_seed: u64,
    stream_seed: u64,
) -> (Vec<Response>, Vec<StatsRow>) {
    let data = uniform_segments(220, 64, 8, 601);
    let overlay = uniform_segments(120, 64, 8, 602);
    let cfg = config_for(backend, par_threshold);
    let plan = Arc::new(
        FaultPlan::new(fault_seed)
            .with(FaultSite::RoundAbort, FaultMode::Seeded { rate: 0.02 })
            .with(FaultSite::ArenaOverflow, FaultMode::Seeded { rate: 0.1 }),
    );
    let svc = QueryService::try_build_with_faults(
        cfg,
        data.world,
        data.segs.clone(),
        overlay.segs.clone(),
        plan,
    )
    .expect("seeded faults recover or degrade, never error");
    let mut reqs = request_stream(data.world, 60, RequestMix::WITH_JOINS, stream_seed);
    let poison = FaultPlan::new(fault_seed ^ 0x9e37)
        .with(FaultSite::PoisonedRequest, FaultMode::Seeded { rate: 0.1 });
    poison_stream(&mut reqs, &poison);
    let responses = svc.execute_batch(&reqs);
    let projection = stats_projection(&svc);
    (responses, projection)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The same fault seed over the same request stream produces
    /// byte-identical responses and the identical deterministic stats
    /// projection on the Sequential and Parallel backends: fault
    /// occurrence indices count per shard, so injection is independent
    /// of the thread schedule and of how the backend executes each
    /// primitive.
    #[test]
    fn same_seed_is_identical_across_backends(
        fault_seed in 0u64..u64::MAX / 2,
        stream_seed in 0u64..1u64 << 16,
    ) {
        let (seq_resp, seq_stats) =
            seeded_run(Backend::Sequential, None, fault_seed, stream_seed);
        let (par_resp, par_stats) =
            seeded_run(Backend::Parallel, Some(1), fault_seed, stream_seed);
        prop_assert_eq!(seq_resp, par_resp);
        prop_assert_eq!(seq_stats, par_stats);
    }

    /// Replaying the same seed twice on the parallel backend is
    /// bit-for-bit reproducible — the property a failure trace depends
    /// on.
    #[test]
    fn same_seed_replays_identically(
        fault_seed in 0u64..u64::MAX / 2,
        stream_seed in 0u64..1u64 << 16,
    ) {
        let a = seeded_run(Backend::Parallel, Some(1), fault_seed, stream_seed);
        let b = seeded_run(Backend::Parallel, Some(1), fault_seed, stream_seed);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }
}

// ---------------------------------------------------------------------
// CI seed matrix entry point.
// ---------------------------------------------------------------------

/// The CI fault-matrix job runs this test once per seed (three fixed
/// seeds plus one derived from the job id, printed in the log) via the
/// `FAULT_SEED` environment variable. The run writes its trace to
/// `target/fault-trace-<seed>.log`; CI uploads those as artifacts when
/// the job goes red.
#[test]
fn seeded_matrix_from_env() {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(101);
    let mut log = format!("fault-injection matrix: seed {seed}\n");

    let (seq_resp, seq_stats) = seeded_run(Backend::Sequential, None, seed, seed ^ 0xbeef);
    let (par_resp, par_stats) = seeded_run(Backend::Parallel, Some(1), seed, seed ^ 0xbeef);
    for (backend, stats) in [("sequential", &seq_stats), ("parallel", &par_stats)] {
        log.push_str(&format!("{backend} backend:\n"));
        for (shard, segments, probes, batches, max_q, degraded, retries, rebuilds, faults) in stats
        {
            log.push_str(&format!(
                "  shard {shard}: segments {segments} probes {probes} batches {batches} \
                 max-queue {max_q} degraded {degraded} retries {retries} \
                 rebuilds {rebuilds} faults {faults}\n"
            ));
        }
    }
    let rejected = seq_resp
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    log.push_str(&format!(
        "responses: {} ({} rejected), backends agree: {}\n",
        seq_resp.len(),
        rejected,
        seq_resp == par_resp,
    ));
    let _ = std::fs::create_dir_all("target");
    std::fs::write(format!("target/fault-trace-{seed}.log"), &log).expect("write fault trace log");

    assert_eq!(seq_resp, par_resp, "seed {seed}: backends diverge");
    assert_eq!(seq_stats, par_stats, "seed {seed}: stats diverge");
}

// ---------------------------------------------------------------------
// Kill-during-skyline-build: kernel sweep + seeded service matrix leg.
// ---------------------------------------------------------------------

/// Aborts the skyline / dominance-aggregation pipelines at every
/// `SkylineAbort` decision point in turn (the skyline entry check plus
/// every CDQ merge round), then recomputes on the very same machine: the
/// recomputed answers must equal the never-faulted ones bit-for-bit, and
/// each injected fault must fire exactly once and never re-fire during
/// recovery — on both backends.
#[test]
fn kill_at_every_skyline_round_recomputes_identically() {
    use dp_spatial::dominance::{dominance_agg, skyline, DomPoint};
    let pts: Vec<DomPoint> = (0..2000)
        .map(|i| DomPoint {
            id: i as SegId,
            x: ((i * 131) % 997) as f64,
            y: ((i * 577) % 991) as f64,
            w: (i % 97) as u64,
        })
        .collect();
    let queries: Vec<(f64, f64)> = (0..16)
        .map(|i| (i as f64 * 60.0, 960.0 - i as f64 * 60.0))
        .collect();
    for (backend, par_threshold) in backends() {
        let make = |plan: Arc<FaultPlan>| {
            let m = match par_threshold {
                Some(t) => Machine::new(backend).with_par_threshold(t),
                None => Machine::new(backend),
            };
            m.with_fault_plan(plan)
        };

        // Fault-free baseline; the disabled plan still counts the
        // skyline-abort decision points, which is the sweep width.
        let counting = Arc::new(FaultPlan::disabled());
        let baseline_machine = make(counting.clone());
        let base_sky = skyline(&baseline_machine, &pts);
        let base_agg = dominance_agg(&baseline_machine, &pts, &queries);
        let sites = counting.occurrences(FaultSite::SkylineAbort);
        assert!(
            sites > 2,
            "sweep needs entry + multiple merge rounds, got {sites}"
        );

        for k in 0..sites {
            let plan = Arc::new(FaultPlan::once_at(FaultSite::SkylineAbort, k));
            let machine = make(plan.clone());
            let crash = catch_unwind(AssertUnwindSafe(|| {
                let s = skyline(&machine, &pts);
                (s, dominance_agg(&machine, &pts, &queries))
            }));
            let err = crash.expect_err("armed skyline abort must kill the build");
            let fault = err
                .downcast_ref::<InjectedFault>()
                .expect("abort payload is the typed InjectedFault");
            assert_eq!(fault.site, FaultSite::SkylineAbort, "site at k={k}");
            assert_eq!(plan.fired(FaultSite::SkylineAbort), 1, "k={k}");

            // Recovery: recompute on the same machine, bit-identically.
            assert_eq!(skyline(&machine, &pts), base_sky, "skyline after k={k}");
            assert_eq!(
                dominance_agg(&machine, &pts, &queries),
                base_agg,
                "aggregates after k={k}"
            );
            assert_eq!(
                plan.fired(FaultSite::SkylineAbort),
                1,
                "once-at fault re-fired during recovery at k={k}"
            );
        }
    }
}

/// Seeded skyline kills during service dominance builds are invisible:
/// the query ladder catches the abort and falls back to the brute path,
/// so a faulted service answers a mixed `WITH_DOMINANCE` stream
/// byte-identically to a never-faulted one. Swept under four seeds
/// derived from `FAULT_SEED`, so the CI fault-matrix job widens the
/// sweep with every matrix entry.
#[test]
fn kill_during_skyline_build_is_invisible_under_seeded_matrix() {
    let base_seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(101);
    let data = uniform_segments(220, 64, 8, 601);
    let overlay = uniform_segments(120, 64, 8, 602);
    for (backend, par_threshold) in backends() {
        let cfg = config_for(backend, par_threshold);
        let clean = QueryService::try_build_with_faults(
            cfg,
            data.world,
            data.segs.clone(),
            overlay.segs.clone(),
            Arc::new(FaultPlan::disabled()),
        )
        .expect("disabled plan builds cleanly");
        let requests = request_stream_with_updates(
            data.world,
            100,
            RequestMix::WITH_DOMINANCE,
            base_seed ^ 0xd0b,
            data.segs.len(),
        );
        let expected = clean.execute_batch(&requests);

        let mut total_fired = 0;
        for seed in [
            base_seed,
            base_seed ^ 0x9e37_79b9_7f4a_7c15,
            base_seed.rotate_left(17) | 1,
            base_seed ^ 0xdead_beef,
        ] {
            let plan = Arc::new(
                FaultPlan::new(seed)
                    .with(FaultSite::SkylineAbort, FaultMode::Seeded { rate: 0.35 }),
            );
            let svc = QueryService::try_build_with_faults(
                cfg,
                data.world,
                data.segs.clone(),
                overlay.segs.clone(),
                plan.clone(),
            )
            .expect("skyline faults never block service construction");
            assert_eq!(
                svc.execute_batch(&requests),
                expected,
                "seed {seed} on {backend:?}: a skyline kill leaked into the answers"
            );
            assert_eq!(
                svc.segments(),
                clean.segments(),
                "seed {seed} on {backend:?}: collections diverged"
            );
            // The service forks the plan per component; the ladder fork
            // owns the skyline site, so read the aggregated stats rather
            // than the parent plan's counters (which never move).
            total_fired += svc.stats().total_faults_injected();
        }
        assert!(
            total_fired > 0,
            "rate 0.35 across four seeds never fired on {backend:?} — the sweep proved nothing"
        );
    }
}

// ---------------------------------------------------------------------
// Snapshot tears: kill-at-every-section sweep + seeded matrix leg.
// ---------------------------------------------------------------------

/// Shared scaffolding for the snapshot-tear legs: a sequential-backend
/// service over a seed-derived world, its clean snapshot on disk, and
/// the bit-exact answers a warm restore from that snapshot produces.
/// Honors `FAULT_SEED` like [`seeded_matrix_from_env`], so the CI
/// fault-matrix job sweeps tears under every seed in its matrix.
struct SnapshotTearRig {
    config: QueryServiceConfig,
    data: Dataset,
    probes: Vec<Request>,
    clean_path: std::path::PathBuf,
    sections: usize,
    expected: Vec<Response>,
}

impl SnapshotTearRig {
    fn new(seed: u64) -> SnapshotTearRig {
        let data = uniform_segments(400, 64, 8, seed ^ 0x51a9);
        let config = QueryServiceConfig {
            shard_grid: 2,
            flush_batch: 64,
            backend: Backend::Sequential,
            ..QueryServiceConfig::default()
        };
        let service = QueryService::build(config, data.world, data.segs.clone());
        let probes = request_stream(data.world, 60, RequestMix::default(), seed ^ 0x9e37);
        let clean_path = std::env::temp_dir().join(format!(
            "fault_snap_clean_{}_{seed}.snap",
            std::process::id()
        ));
        service.save_snapshot(&clean_path).expect("clean save");
        let bytes = std::fs::read(&clean_path).expect("read clean snapshot");
        let sections = dp_spatial::snapshot::SnapshotReader::parse(&bytes)
            .expect("clean snapshot parses")
            .num_sections();
        let (warm_svc, warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &clean_path,
        )
        .expect("clean restore");
        assert!(warm, "clean snapshot must restore warm");
        let expected = warm_svc.execute_batch(&probes);
        SnapshotTearRig {
            config,
            data,
            probes,
            clean_path,
            sections,
            expected,
        }
    }

    /// The original service the clean snapshot was taken from (rebuilt;
    /// the build is deterministic).
    fn service(&self) -> QueryService {
        QueryService::build(self.config, self.data.world, self.data.segs.clone())
    }

    /// Restores from `path` with faults disabled; returns the service
    /// and whether the snapshot served warm.
    fn restore(&self, path: &std::path::Path) -> (QueryService, bool) {
        QueryService::try_restore_or_build(
            self.config,
            self.data.world,
            self.data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            path,
        )
        .expect("a damaged snapshot degrades to a cold rebuild, never an error")
    }
}

impl Drop for SnapshotTearRig {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.clean_path);
    }
}

/// Tears the snapshot write at *every* section in turn (even
/// occurrences flip a bit inside the section, odd occurrences truncate
/// inside it — the sweep exercises both damage shapes), then restores.
/// Every tear must: fire exactly once, be caught by the reader (never
/// restore warm), surface one `ColdRestart` event with a typed snapshot
/// cause, and leave the cold-fallback service answering bit-identically
/// to the warm restore of the undamaged snapshot.
#[test]
fn snapshot_torn_at_every_section_falls_through_cold() {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(101);
    let rig = SnapshotTearRig::new(seed);
    // META, WORLD, BASE_SEGS, TOMBSTONES, PENDING + (ids, tree) per
    // shard on a 2x2 grid; no overlay writes, so no LADDER section.
    assert_eq!(rig.sections, 13, "unexpected section count for the sweep");
    let service = rig.service();

    for k in 0..rig.sections as u64 {
        let plan = Arc::new(FaultPlan::once_at(FaultSite::SnapshotTorn, k));
        let torn_path = std::env::temp_dir().join(format!(
            "fault_snap_torn_{}_{seed}_{k}.snap",
            std::process::id()
        ));
        service
            .save_snapshot_with_faults(&torn_path, Some(plan.clone()))
            .expect("a torn save still writes bytes; the damage is silent");
        assert_eq!(
            plan.fired(FaultSite::SnapshotTorn),
            1,
            "tear at section {k} must fire exactly once"
        );
        let (svc, warm) = rig.restore(&torn_path);
        let _ = std::fs::remove_file(&torn_path);
        assert!(!warm, "tear at section {k} must not restore warm");
        let cold_restarts: Vec<_> = svc
            .recovery_events()
            .into_iter()
            .filter(|e| e.action == RecoveryAction::ColdRestart)
            .collect();
        assert_eq!(
            cold_restarts.len(),
            1,
            "tear at section {k}: exactly one ColdRestart event"
        );
        assert!(
            matches!(
                cold_restarts[0].error,
                SpatialError::SnapshotCorrupt { .. } | SpatialError::SnapshotMalformed { .. }
            ),
            "tear at section {k}: cause must be a typed snapshot error, got {}",
            cold_restarts[0].error
        );
        assert_eq!(
            svc.execute_batch(&rig.probes),
            rig.expected,
            "tear at section {k}: cold fallback diverges from the clean restore"
        );
    }
}

/// The seeded companion: a rate-armed `FaultPlan` tears a random subset
/// of sections (possibly none). Whatever it does, serving is never
/// silently wrong — an untouched file restores warm, a damaged one is
/// rejected and rebuilt cold, and both answer bit-identically to the
/// clean restore.
#[test]
fn seeded_snapshot_tears_never_serve_silently_wrong() {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(101);
    let rig = SnapshotTearRig::new(seed);
    let service = rig.service();
    for round in 0..4u64 {
        let plan = Arc::new(FaultPlan::seeded(seed ^ (round << 8), 0.35));
        let path = std::env::temp_dir().join(format!(
            "fault_snap_seeded_{}_{seed}_{round}.snap",
            std::process::id()
        ));
        service
            .save_snapshot_with_faults(&path, Some(plan.clone()))
            .expect("seeded save writes");
        let tears = plan.fired(FaultSite::SnapshotTorn);
        let (svc, warm) = rig.restore(&path);
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            warm,
            tears == 0,
            "round {round}: {tears} tears fired, warm={warm}"
        );
        assert_eq!(
            svc.execute_batch(&rig.probes),
            rig.expected,
            "round {round}: serving diverged after {tears} tears"
        );
    }
}
