//! `dpspatial` — a small command-line front end for the workspace, the
//! kind of tool a downstream user drives the library with:
//!
//! ```text
//! dpspatial generate --kind roads --n 2000 --size 1024 --seed 7 --out map.csv
//! dpspatial build    --input map.csv --index bpmr --capacity 8
//! dpspatial query    --input map.csv --index rtree --window 10,10,200,150
//! dpspatial nearest  --input map.csv --point 512,300
//! dpspatial join     --a roads.csv --b rivers.csv
//! ```
//!
//! Maps are CSV files with one `ax,ay,bx,by` segment per line (integer
//! grid coordinates inside a power-of-two world, inferred or passed with
//! `--size`). Argument parsing is hand-rolled to keep the dependency set
//! at the workspace's approved list.

use dp_spatial_suite::geom::{LineSeg, Point, Rect};
use dp_spatial_suite::spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial_suite::spatial::join::spatial_join;
use dp_spatial_suite::spatial::pm1::build_pm1;
use dp_spatial_suite::spatial::pm_family::{build_pm2, build_pm3};
use dp_spatial_suite::spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial_suite::spatial::rtree::{build_rtree, pack_rtree_hilbert};
use dp_spatial_suite::spatial::stats::measure_build;
use dp_spatial_suite::workloads as wl;
use scan_model::Machine;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "build" => cmd_build(&flags),
        "query" => cmd_query(&flags),
        "nearest" => cmd_nearest(&flags),
        "join" => cmd_join(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dpspatial: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
dpspatial — data-parallel spatial indexes (Hoel & Samet, ICPP 1995)

USAGE:
  dpspatial generate --kind <roads|uniform|clustered|rings> --n <N>
                     [--size <pow2>] [--seed <S>] [--out <file>]
  dpspatial build    --input <file> [--index <bpmr|pm1|pm2|pm3|rtree|pack>]
                     [--capacity <B>] [--order <m,M>] [--depth <D>]
  dpspatial query    --input <file> --window <x0,y0,x1,y1> [--index ...]
  dpspatial nearest  --input <file> --point <x,y>
  dpspatial join     --a <file> --b <file> [--capacity <B>]
";

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut flags = HashMap::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?.to_string();
        let value = it.next()?.clone();
        flags.insert(key, value);
    }
    Some((cmd, flags))
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn get_or<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse {what} from `{s}`"))
}

fn parse_csv_numbers(s: &str, count: usize, what: &str) -> Result<Vec<f64>, String> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| parse_num(p.trim(), what))
        .collect::<Result<_, _>>()?;
    if parts.len() != count {
        return Err(format!("{what} needs {count} comma-separated numbers"));
    }
    Ok(parts)
}

// ----------------------------------------------------------------------
// Map I/O
// ----------------------------------------------------------------------

fn write_map(path: &str, segs: &[LineSeg]) -> Result<(), String> {
    let mut out = String::with_capacity(segs.len() * 16);
    for s in segs {
        writeln!(out, "{},{},{},{}", s.a.x, s.a.y, s.b.x, s.b.y).unwrap();
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

fn read_map(path: &str) -> Result<Vec<LineSeg>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut segs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let nums = parse_csv_numbers(line, 4, "segment coordinates")
            .map_err(|e| format!("{path}:{}: {e}", ln + 1))?;
        segs.push(LineSeg::from_coords(nums[0], nums[1], nums[2], nums[3]));
    }
    if segs.is_empty() {
        return Err(format!("{path} holds no segments"));
    }
    Ok(segs)
}

/// Smallest power-of-two world strictly containing every coordinate.
fn infer_world(segs: &[LineSeg], flags: &HashMap<String, String>) -> Result<Rect, String> {
    if let Some(size) = flags.get("size") {
        let size: u32 = parse_num(size, "--size")?;
        if !size.is_power_of_two() {
            return Err("--size must be a power of two".into());
        }
        return Ok(Rect::from_coords(0.0, 0.0, size as f64, size as f64));
    }
    let max = segs
        .iter()
        .flat_map(|s| [s.a.x, s.a.y, s.b.x, s.b.y])
        .fold(0.0f64, f64::max);
    let side = (max.max(1.0) as u64 + 1).next_power_of_two() as f64;
    Ok(Rect::from_coords(0.0, 0.0, side, side))
}

// ----------------------------------------------------------------------
// Commands
// ----------------------------------------------------------------------

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = get(flags, "kind")?;
    let n: usize = parse_num(get(flags, "n")?, "--n")?;
    let size: u32 = parse_num(get_or(flags, "size", "1024"), "--size")?;
    let seed: u64 = parse_num(get_or(flags, "seed", "42"), "--seed")?;
    let data = match kind {
        "roads" => {
            let cells = (((n as f64) / 1.8).sqrt().ceil() as u32).max(2);
            wl::road_network(cells, size, seed)
        }
        "uniform" => wl::uniform_segments(n, size, (size / 16).max(2), seed),
        "clustered" => wl::clustered_segments(n, 5, (size / 64).max(2), size, seed),
        "rings" => {
            let cells = (((n as f64) / 4.0).sqrt().ceil() as u32).max(1);
            wl::polygon_rings(cells, size.max(cells * 8).next_power_of_two(), seed)
        }
        other => return Err(format!("unknown --kind `{other}`")),
    };
    let out = get_or(flags, "out", "map.csv");
    write_map(out, &data.segs)?;
    println!(
        "wrote {} segments ({}) to {out}",
        data.segs.len(),
        data.name
    );
    Ok(())
}

enum AnyIndex {
    Quad(dp_spatial::quadtree::DpQuadtree),
    Rtree(dp_spatial::rtree::DpRTree),
}

fn build_index(
    machine: &Machine,
    flags: &HashMap<String, String>,
    segs: &[LineSeg],
    world: Rect,
) -> Result<(AnyIndex, String), String> {
    let kind = get_or(flags, "index", "bpmr");
    let depth: usize = parse_num(get_or(flags, "depth", "12"), "--depth")?;
    let capacity: usize = parse_num(get_or(flags, "capacity", "8"), "--capacity")?;
    Ok(match kind {
        "bpmr" => (
            AnyIndex::Quad(build_bucket_pmr(machine, world, segs, capacity, depth)),
            format!("bucket PMR quadtree (b={capacity}, depth<={depth})"),
        ),
        "pm1" => (
            AnyIndex::Quad(build_pm1(machine, world, segs, depth)),
            "PM1 quadtree".into(),
        ),
        "pm2" => (
            AnyIndex::Quad(build_pm2(machine, world, segs, depth)),
            "PM2 quadtree".into(),
        ),
        "pm3" => (
            AnyIndex::Quad(build_pm3(machine, world, segs, depth)),
            "PM3 quadtree".into(),
        ),
        "rtree" | "pack" => {
            let order = get_or(flags, "order", "2,8");
            let parts = parse_csv_numbers(order, 2, "--order")?;
            let (m, mx) = (parts[0] as usize, parts[1] as usize);
            if kind == "pack" {
                (
                    AnyIndex::Rtree(pack_rtree_hilbert(machine, segs, world, mx)),
                    format!("Hilbert-packed R-tree (M={mx})"),
                )
            } else {
                (
                    AnyIndex::Rtree(build_rtree(
                        machine,
                        segs,
                        m,
                        mx,
                        RtreeSplitAlgorithm::Sweep,
                    )),
                    format!("R-tree ({m},{mx}) sweep split"),
                )
            }
        }
        other => return Err(format!("unknown --index `{other}`")),
    })
}

fn cmd_build(flags: &HashMap<String, String>) -> Result<(), String> {
    let segs = read_map(get(flags, "input")?)?;
    let world = infer_world(&segs, flags)?;
    let machine = Machine::parallel();
    let (built, report) = measure_build(&machine, || build_index(&machine, flags, &segs, world));
    let (index, label) = built?;
    println!(
        "built {label} over {} segments in {:?} (world {world})",
        segs.len(),
        report.elapsed
    );
    match index {
        AnyIndex::Quad(t) => {
            let s = t.stats();
            println!(
                "rounds {}   nodes {}   leaves {} ({} empty)   height {}   q-edges {}   truncated {}",
                t.rounds(),
                s.nodes,
                s.leaves,
                s.empty_leaves,
                s.height,
                s.entries,
                t.truncated()
            );
        }
        AnyIndex::Rtree(t) => {
            let s = t.stats();
            let (cov, ov) = t.quality_metrics();
            println!(
                "rounds {}   nodes {}   leaves {}   height {}   coverage {cov:.3e}   overlap {ov:.3e}",
                t.rounds(),
                s.nodes,
                s.leaves,
                s.height
            );
        }
    }
    let ops = machine.stats();
    println!(
        "machine ops: {} scans, {} elementwise, {} permutes, {} sorts",
        ops.scans, ops.elementwise, ops.permutes, ops.sorts
    );
    Ok(())
}

fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let segs = read_map(get(flags, "input")?)?;
    let world = infer_world(&segs, flags)?;
    let nums = parse_csv_numbers(get(flags, "window")?, 4, "--window")?;
    let window = Rect::from_coords(
        nums[0].min(nums[2]),
        nums[1].min(nums[3]),
        nums[0].max(nums[2]),
        nums[1].max(nums[3]),
    );
    let machine = Machine::parallel();
    let (index, label) = build_index(&machine, flags, &segs, world)?;
    let hits = match &index {
        AnyIndex::Quad(t) => t.window_query(&window, &segs),
        AnyIndex::Rtree(t) => t.window_query(&window, &segs),
    };
    println!("{label}: {} segments intersect {window}", hits.len());
    // Listing output tolerates a closed pipe (e.g. `| head`).
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in hits {
        if writeln!(out, "{id}: {}", segs[id as usize]).is_err() {
            break;
        }
    }
    Ok(())
}

fn cmd_nearest(flags: &HashMap<String, String>) -> Result<(), String> {
    let segs = read_map(get(flags, "input")?)?;
    let _world = infer_world(&segs, flags)?;
    let nums = parse_csv_numbers(get(flags, "point")?, 2, "--point")?;
    let p = Point::new(nums[0], nums[1]);
    let machine = Machine::parallel();
    let tree = build_rtree(&machine, &segs, 2, 8, RtreeSplitAlgorithm::Sweep);
    match tree.nearest(p, &segs) {
        Some((id, d)) => println!(
            "nearest to {p}: segment {id} {} (distance {d:.3})",
            segs[id as usize]
        ),
        None => println!("the map is empty"),
    }
    Ok(())
}

fn cmd_join(flags: &HashMap<String, String>) -> Result<(), String> {
    let a = read_map(get(flags, "a")?)?;
    let b = read_map(get(flags, "b")?)?;
    let capacity: usize = parse_num(get_or(flags, "capacity", "8"), "--capacity")?;
    // Shared world over both maps.
    let all: Vec<LineSeg> = a.iter().chain(b.iter()).copied().collect();
    let world = infer_world(&all, flags)?;
    let machine = Machine::parallel();
    let ta = build_bucket_pmr(&machine, world, &a, capacity, 12);
    let tb = build_bucket_pmr(&machine, world, &b, capacity, 12);
    let pairs = spatial_join(&ta, &a, &tb, &b);
    println!("{} intersecting pairs", pairs.len());
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (ia, ib) in pairs {
        if writeln!(out, "{ia} x {ib}").is_err() {
            break;
        }
    }
    Ok(())
}
