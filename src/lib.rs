//! Umbrella crate for the `dp-spatial` workspace.
//!
//! Re-exports the public surface of every member crate so that examples and
//! integration tests can use a single import root. See `README.md` for a
//! tour and `DESIGN.md` for the paper-to-module map.

pub use dp_geom as geom;
pub use dp_service as service;
pub use dp_spatial as spatial;
pub use dp_workloads as workloads;
pub use scan_model as scanmodel;
pub use seq_spatial as seq;
